"""Interleaved block-wise execution (Sections 3.3 and 4).

The whole bitstream program is fused into a single loop over blocks.
Each block is computed over a *window* extending ``lookback`` bits
before the block (and ``lookahead`` bits after), re-deriving every
intermediate from the globally-exact basis inputs — the paper's
selective recomputation.  Bits before the window read as zero, so a
window value at position ``p`` is trusted once ``p - lookback(v) >=
window start``; the window is sized so all block-region outputs are
trusted.

Dynamic dependencies (shifts inside ``while`` loops, Figure 7 (b)) are
handled exactly as the paper describes: the executor tracks cumulative
shift offsets at run time — loop counters multiply in naturally — and
the observed requirement of block *i* sizes the window of block
*i + 1*.  This is sound because any dependency chain alive at the next
block boundary was fully recomputed (hence measured) inside the current
window; see ``docs in overlap.py``.  Requirements beyond one block raise
:class:`OverlapLimitError` (the Section 8.2 limit) unless the
sequential-loop fallback — the paper's proposed future work — is
enabled.

Two modes:

* full interleaving (``segmented=False``): the DTM / SR / ZBS schemes;
  nothing is materialised except program outputs.
* segmented (``segmented=True``): the DTM- scheme — static analysis
  only.  Straight-line segments are fused and windowed with their exact
  static Δ; ``while`` loops run as sequential global passes with
  loop-carried streams materialised.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Union

from ..bitstream.bitvector import BitVector
from ..gpu.machine import DEFAULT_GEOMETRY, CTAGeometry
from ..gpu.memory import GlobalMemory, SharedMemory
from ..gpu.metrics import KernelMetrics
from ..ir.instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..ir.interpreter import const_stream
from ..ir.program import Program
from .barriers import BarrierPlan
from .overlap import (OverlapLimitError, RuntimeTracker, analyze_static,
                      region_bounds)
from .schemes import ExecutionResult

_LOOP_SLACK = 64


def const_window(kind: str, wstart: int, wend: int,
                 length: int) -> BitVector:
    """Window-relative slice of a constant stream of total ``length``."""
    return const_stream(kind, length).slice(wstart, wend)


class _WindowRun:
    """Execution state for one block's window."""

    def __init__(self, executor: "InterleavedExecutor", wstart: int,
                 wend: int, length: int, full_env: Dict[str, BitVector],
                 metrics: KernelMetrics, memory: GlobalMemory,
                 smem: SharedMemory, tracker: RuntimeTracker,
                 honour_guards: bool):
        self.executor = executor
        self.geometry = executor.geometry
        self.wstart = wstart
        self.wend = wend
        self.length = length
        self.full_env = full_env
        self.metrics = metrics
        self.memory = memory
        self.smem = smem
        self.tracker = tracker
        self.honour_guards = honour_guards
        self.env: Dict[str, BitVector] = {}
        self._loaded: Set[str] = set()
        self.window_words = self.geometry.words(wend - wstart)
        self.window_bytes = -(-(wend - wstart) // 8)

    # -- operand access ----------------------------------------------------

    def get(self, name: str) -> BitVector:
        value = self.env.get(name)
        if value is not None:
            return value
        full = self.full_env.get(name)
        if full is None:
            raise KeyError(f"undefined variable {name}")
        if name not in self._loaded:
            self._loaded.add(name)
            self.memory.read(self.window_bytes)
        value = full.slice(self.wstart, self.wend)
        self.env[name] = value
        return value

    # -- statement execution ---------------------------------------------------

    def exec_stmts(self, stmts: Sequence[Stmt]) -> None:
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            if isinstance(stmt, Instr):
                self.exec_instr(stmt)
                index += 1
            elif isinstance(stmt, WhileLoop):
                self.exec_while(stmt)
                index += 1
            elif isinstance(stmt, SkipGuard):
                index += self.exec_guard(stmt, stmts, index)
            else:
                raise TypeError(f"unknown statement {stmt!r}")

    def exec_instr(self, instr: Instr) -> None:
        self.tracker.record(instr)
        self.env[instr.dest] = self._eval(instr)
        self.metrics.thread_word_ops += self.window_words
        if instr.op is Op.SHIFT:
            self._account_shift(instr)

    def _eval(self, instr: Instr) -> BitVector:
        if instr.op is Op.CONST:
            return const_window(instr.const, self.wstart, self.wend,
                                self.length)
        if instr.op is Op.MATCH_CC:
            return self._match_cc(instr)
        args = [self.get(a) for a in instr.args]
        if instr.op is Op.AND:
            return args[0] & args[1]
        if instr.op is Op.OR:
            return args[0] | args[1]
        if instr.op is Op.XOR:
            return args[0] ^ args[1]
        if instr.op is Op.ANDN:
            return args[0].andn(args[1])
        if instr.op is Op.NOT:
            return ~args[0]
        if instr.op is Op.SHIFT:
            return args[0].advance(instr.shift)
        if instr.op is Op.COPY:
            return args[0]
        raise TypeError(f"unhandled op {instr.op}")

    def _match_cc(self, instr: Instr) -> BitVector:
        if instr.cc.is_empty():
            return BitVector.zeros(self.wend - self.wstart)
        byte = instr.cc.single_byte()
        result = const_window("text", self.wstart, self.wend, self.length)
        for k in range(8):
            basis = self.get(f"b{k}")
            if byte >> (7 - k) & 1:
                result = result & basis
            else:
                result = result.andn(basis)
        self.metrics.thread_word_ops += 8 * self.window_words
        return result

    def _account_shift(self, instr: Instr) -> None:
        plan = self.executor.barrier_plan
        info = plan.lookup(instr) if plan is not None else None
        if info is None or info.is_leader:
            # Two barriers per SHIFT group: inputs visible in shared
            # memory before, outputs ready after (Section 5.1).
            self.metrics.barriers += 2
            stored = info.stored_vars if info is not None else 1
            self.smem.store(stored * self.window_bytes)
        # Every shift reads its word and a neighbour word.
        self.smem.load(2 * self.window_bytes)

    def exec_while(self, loop: WhileLoop) -> None:
        limit = (self.wend - self.wstart) + _LOOP_SLACK
        iterations = 0
        while True:
            # Block-wide reduction of the condition (one barrier).
            self.metrics.thread_word_ops += self.window_words
            self.metrics.barriers += 1
            if not self.get(loop.cond).any():
                break
            if iterations >= limit:
                raise RuntimeError(f"while({loop.cond}) diverged in window")
            iterations += 1
            self.metrics.loop_iterations += 1
            self.exec_stmts(loop.body)

    def exec_guard(self, guard: SkipGuard, stmts: Sequence[Stmt],
                   index: int) -> int:
        """Returns how many statements to advance past the guard."""
        self.metrics.guard_checks += 1
        self.metrics.thread_word_ops += self.window_words  # atomicOr reduce
        self.metrics.barriers += 1
        if not self.honour_guards or self.get(guard.cond).any():
            return 1
        # Skip: guarded range is provably zero; dependency bounds are
        # still propagated so later windows stay conservatively sized.
        self.metrics.guard_hits += 1
        zero = BitVector.zeros(self.wend - self.wstart)
        for stmt in stmts[index + 1:index + 1 + guard.skip_count]:
            if isinstance(stmt, SkipGuard):
                continue  # a nested guard is skipped along with its range
            assert isinstance(stmt, Instr), "guards never span control flow"
            self.tracker.record(stmt)
            self.env[stmt.dest] = zero
            self.metrics.skipped_word_ops += self.window_words
        return guard.skip_count + 1


class InterleavedExecutor:
    """Block-interleaved executor implementing DTM (- SR / ZBS via a
    pre-transformed program and barrier plan).

    ``backend="compiled"`` swaps the per-window simulation for the
    cached NumPy kernel (:mod:`repro.backend`): output streams are
    bit-identical, guards are honoured when requested, and the metrics
    are compute-side *estimates* (:func:`~repro.backend.estimate_metrics`)
    — schedule-fidelity counters (recomputation, barriers, shared
    memory, window reruns) stay zero because no window schedule ran.
    """

    def __init__(self, geometry: CTAGeometry = DEFAULT_GEOMETRY,
                 barrier_plan: Optional[BarrierPlan] = None,
                 honour_guards: bool = False,
                 segmented: bool = False,
                 loop_fallback: bool = False,
                 smem_capacity_bytes: int = 96 * 1024,
                 backend: str = "simulate"):
        if backend not in ("simulate", "compiled"):
            raise ValueError(f"unknown backend {backend!r}")
        self.geometry = geometry
        self.barrier_plan = barrier_plan
        self.honour_guards = honour_guards
        self.segmented = segmented
        self.loop_fallback = loop_fallback
        self.smem_capacity_bytes = smem_capacity_bytes
        self.backend = backend

    def _run_compiled(self, program: Program,
                      data: bytes) -> ExecutionResult:
        from ..backend import compile_program, estimate_metrics

        compiled = compile_program(program,
                                   honour_guards=self.honour_guards)
        raw, stats = compiled.run_data(data)
        length = len(data) + 1
        mask = (1 << length) - 1
        outputs = {
            out: BitVector(int.from_bytes(raw[out].tobytes(), "little")
                           & mask, length)
            for out in program.outputs}
        metrics = estimate_metrics(program, self.geometry, length, stats)
        return ExecutionResult(outputs=outputs, metrics=metrics)

    def run(self, program: Program, data: bytes) -> ExecutionResult:
        from ..ir.interpreter import make_environment

        if self.backend == "compiled":
            return self._run_compiled(program, data)
        metrics = KernelMetrics()
        memory = GlobalMemory(metrics)
        smem = SharedMemory(metrics, capacity_bytes=self.smem_capacity_bytes)
        full_env = make_environment(data)
        length = len(data) + 1

        if self.segmented:
            runner = _SegmentedRunner(self, program, full_env, length,
                                      metrics, memory, smem)
            outputs = runner.run()
        else:
            try:
                runner = _FusedRunner(self, program, full_env, length,
                                      metrics, memory, smem)
                outputs = runner.run()
            except OverlapLimitError:
                if not self.loop_fallback:
                    raise
                # The paper's proposed fallback (Section 8.2): generate
                # the loop-carried streams with sequential passes and
                # let block-wise execution consume them — which is the
                # segmented (DTM-) schedule.  Restart cleanly so the
                # metrics describe the executed schedule.
                metrics = KernelMetrics()
                metrics.loop_fallbacks += 1
                memory = GlobalMemory(metrics)
                smem = SharedMemory(metrics,
                                    capacity_bytes=self.smem_capacity_bytes)
                full_env = make_environment(data)
                runner = _SegmentedRunner(self, program, full_env, length,
                                          metrics, memory, smem)
                outputs = runner.run()
        return ExecutionResult(outputs=outputs, metrics=metrics)


class _FusedRunner:
    """Whole-program single-loop execution (DTM / SR / ZBS)."""

    def __init__(self, executor, program, full_env, length, metrics,
                 memory, smem):
        self.executor = executor
        self.program = program
        self.full_env = full_env
        self.length = length
        self.metrics = metrics
        self.memory = memory
        self.smem = smem
        self.static = analyze_static(program)

    def run(self) -> Dict[str, BitVector]:
        geometry = self.executor.geometry
        metrics = self.metrics
        metrics.fused_loops += 1
        metrics.static_overlap_bits = max(metrics.static_overlap_bits,
                                          self.static.delta)
        max_overlap = geometry.max_overlap_bits
        accumulators = {out: 0 for out in self.program.outputs}
        lookback_req = min(self.static.lookback, max_overlap)
        lookahead_req = self.static.lookahead

        for index, start, end in geometry.iter_blocks(self.length):
            lookback = geometry.align_up(min(lookback_req, max_overlap,
                                             start))
            lookahead = lookahead_req
            while True:
                wstart = start - lookback
                wend = min(self.length, end + lookahead)
                run = _WindowRun(self.executor, wstart, wend, self.length,
                                 self.full_env, metrics, self.memory,
                                 self.smem, RuntimeTracker(
                                     self.program.inputs),
                                 self.executor.honour_guards)
                run.exec_stmts(self.program.statements)
                needed_ahead = run.tracker.max_lookahead
                if wend == self.length or needed_ahead <= wend - end:
                    break
                if needed_ahead > max_overlap:
                    raise OverlapLimitError(
                        f"block {index} needs {needed_ahead} lookahead "
                        f"bits, limit {max_overlap}")
                lookahead = geometry.align_up(needed_ahead)
                metrics.window_reruns += 1

            self._account_block(run, index, start, end, lookback)
            for out, var in self.program.outputs.items():
                block = run.env[var].slice(start - run.wstart,
                                           end - run.wstart)
                accumulators[out] |= block.bits << start
                self.memory.write(-(-(end - start) // 8))

            # The observed requirement of this block sizes the next
            # window; growth through one block is bounded by the block.
            observed = run.tracker.max_lookback
            bounded = min(observed, lookback + (end - start))
            if bounded > max_overlap:
                raise OverlapLimitError(
                    f"block {index} observed a {observed}-bit dependency; "
                    f"interleaved execution supports at most {max_overlap} "
                    f"(enable loop_fallback or use a sequential scheme)")
            lookback_req = max(self.static.lookback, bounded)

        return {out: BitVector(bits, self.length)
                for out, bits in accumulators.items()}

    def _account_block(self, run: _WindowRun, index: int, start: int,
                       end: int, lookback: int) -> None:
        metrics = self.metrics
        metrics.blocks_processed += 1
        metrics.output_bits += end - start
        metrics.recomputed_bits += (run.wend - run.wstart) - (end - start)
        dynamic = max(0, lookback - self.static.lookback)
        metrics.dynamic_overlap_total += dynamic
        metrics.dynamic_overlap_max = max(metrics.dynamic_overlap_max,
                                          dynamic)


_SegUnit = Union[List[Instr], WhileLoop]


def split_segments(stmts: Sequence[Stmt]) -> List[_SegUnit]:
    """Maximal straight-line segments; while loops stand alone.
    Guards are dropped (ZBS applies only to full interleaving)."""
    units: List[_SegUnit] = []
    current: List[Instr] = []
    for stmt in stmts:
        if isinstance(stmt, Instr):
            current.append(stmt)
        elif isinstance(stmt, WhileLoop):
            if current:
                units.append(current)
                current = []
            units.append(stmt)
        elif isinstance(stmt, SkipGuard):
            continue
    if current:
        units.append(current)
    return units


class _SegmentedRunner:
    """DTM-: fuse and window straight-line segments only; while loops
    execute as sequential global passes with materialised streams."""

    def __init__(self, executor, program, full_env, length, metrics,
                 memory, smem):
        self.executor = executor
        self.program = program
        self.full_env = full_env
        self.length = length
        self.metrics = metrics
        self.memory = memory
        self.smem = smem
        self.stream_bytes = -(-length // 8)
        self.crossing = self._crossing_vars()

    def run(self) -> Dict[str, BitVector]:
        self._count_static_loops(self.program.statements)
        self._exec_units(self.program.statements)
        return {out: self.full_env[var]
                for out, var in self.program.outputs.items()}

    def _count_static_loops(self, stmts) -> None:
        for unit in split_segments(stmts):
            if isinstance(unit, WhileLoop):
                self._count_static_loops(unit.body)
            else:
                self.metrics.fused_loops += 1

    def _crossing_vars(self) -> Set[str]:
        """Variables live across segment boundaries (materialised)."""
        crossing: Set[str] = set(self.program.outputs.values())
        defined_in: Dict[str, int] = {}
        seg_id = 0

        def visit(stmts):
            nonlocal seg_id
            for unit in split_segments(stmts):
                if isinstance(unit, WhileLoop):
                    crossing.add(unit.cond)
                    visit(unit.body)
                    seg_id += 1
                    continue
                for instr in unit:
                    for arg in instr.args:
                        if defined_in.get(arg, -1) != seg_id:
                            crossing.add(arg)
                    if instr.dest in defined_in:
                        crossing.add(instr.dest)
                    defined_in[instr.dest] = seg_id
                seg_id += 1

        visit(self.program.statements)
        return crossing

    def _exec_units(self, stmts: Sequence[Stmt]) -> None:
        for unit in split_segments(stmts):
            if isinstance(unit, WhileLoop):
                self._exec_while(unit)
            else:
                self._exec_segment(unit)

    def _exec_while(self, loop: WhileLoop) -> None:
        words = self.executor.geometry.words(self.length)
        limit = self.length + _LOOP_SLACK
        iterations = 0
        while True:
            self.memory.read(self.stream_bytes)
            self.metrics.thread_word_ops += words
            self.metrics.barriers += 1
            if not self.full_env[loop.cond].any():
                break
            if iterations >= limit:
                raise RuntimeError(f"while({loop.cond}) diverged")
            iterations += 1
            self.metrics.loop_iterations += 1
            self._exec_units(loop.body)

    def _exec_segment(self, instrs: List[Instr]) -> None:
        geometry = self.executor.geometry
        _, lookback, lookahead = region_bounds(instrs)
        lookback = geometry.align_up(lookback)
        self.metrics.static_overlap_bits = max(
            self.metrics.static_overlap_bits, lookback + lookahead)
        accumulators: Dict[str, int] = {}
        live_out = [i.dest for i in instrs if i.dest in self.crossing]

        for _index, start, end in geometry.iter_blocks(self.length):
            wstart = max(0, start - lookback)
            wend = min(self.length, end + lookahead)
            run = _WindowRun(self.executor, wstart, wend, self.length,
                             self.full_env, self.metrics, self.memory,
                             self.smem,
                             RuntimeTracker(self.full_env.keys()),
                             honour_guards=False)
            run.exec_stmts(instrs)
            self.metrics.blocks_processed += 1
            self.metrics.output_bits += end - start
            self.metrics.recomputed_bits += (wend - wstart) - (end - start)
            for var in set(live_out):
                block = run.env[var].slice(start - wstart, end - wstart)
                accumulators[var] = accumulators.get(var, 0) \
                    | (block.bits << start)
                self.memory.write(-(-(end - start) // 8))

        for var, bits in accumulators.items():
            self.full_env[var] = BitVector(bits, self.length)
            self.memory.allocate_stream(var, self.stream_bytes)

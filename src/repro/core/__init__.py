"""BitGen core: the paper's contribution.

Interleaved bitstream execution with Dependency-Aware Thread-Data
Mapping, Shift Rebalancing, and Zero Block Skipping, plus the
sequential baseline, regex grouping, and CUDA-like code emission.
"""

from .barriers import BarrierPlan, plan_barriers
from .codegen import render_kernel, render_module
from .engine import BitGenEngine, BitGenResult, CompiledGroup
from .grouping import RegexGroup, group_regexes, imbalance
from .interleaved import InterleavedExecutor, const_window, split_segments
from .overlap import (OverlapLimitError, RuntimeTracker, StaticOverlap,
                      analyze_static, propagate, region_bounds)
from .rebalance import rebalance_program
from .schemes import SCHEME_LADDER, ExecutionResult, Scheme
from .sequential import SequentialExecutor, split_passes
from .streaming import StreamingMatcher
from .zeroskip import insert_guards

__all__ = [
    "BarrierPlan", "BitGenEngine", "BitGenResult", "CompiledGroup",
    "ExecutionResult", "InterleavedExecutor", "OverlapLimitError",
    "RegexGroup", "RuntimeTracker", "SCHEME_LADDER", "Scheme",
    "SequentialExecutor", "StaticOverlap", "StreamingMatcher",
    "analyze_static",
    "const_window", "group_regexes", "imbalance", "insert_guards",
    "plan_barriers", "propagate", "rebalance_program", "region_bounds",
    "render_kernel", "render_module", "split_passes", "split_segments",
]

"""BitGen core: the paper's contribution.

Interleaved bitstream execution with Dependency-Aware Thread-Data
Mapping, Shift Rebalancing, and Zero Block Skipping, plus the
sequential baseline, regex grouping, and CUDA-like code emission.

Names are imported lazily: ``repro.parallel.config`` needs
:mod:`.schemes` while :mod:`.engine` needs ``repro.parallel.config``,
so an eager ``from .engine import ...`` here would make the package
import order dependent (``import repro.parallel`` before
``import repro.core`` hit a circular import).
"""

__all__ = [
    "BarrierPlan", "BitGenEngine", "BitGenResult", "CompiledGroup",
    "ExecutionResult", "InterleavedExecutor", "OverlapLimitError",
    "RegexGroup", "RuntimeTracker", "SCHEME_LADDER", "Scheme",
    "SequentialExecutor", "StaticOverlap", "StreamingMatcher",
    "analyze_static",
    "const_window", "group_regexes", "imbalance", "insert_guards",
    "plan_barriers", "propagate", "rebalance_program", "region_bounds",
    "render_kernel", "render_module", "split_passes", "split_segments",
]

_LAZY = {
    "BarrierPlan": "barriers", "plan_barriers": "barriers",
    "render_kernel": "codegen", "render_module": "codegen",
    "BitGenEngine": "engine", "BitGenResult": "engine",
    "CompiledGroup": "engine",
    "RegexGroup": "grouping", "group_regexes": "grouping",
    "imbalance": "grouping",
    "InterleavedExecutor": "interleaved", "const_window": "interleaved",
    "split_segments": "interleaved",
    "OverlapLimitError": "overlap", "RuntimeTracker": "overlap",
    "StaticOverlap": "overlap", "analyze_static": "overlap",
    "propagate": "overlap", "region_bounds": "overlap",
    "rebalance_program": "rebalance",
    "SCHEME_LADDER": "schemes", "ExecutionResult": "schemes",
    "Scheme": "schemes",
    "SequentialExecutor": "sequential", "split_passes": "sequential",
    "StreamingMatcher": "streaming",
    "insert_guards": "zeroskip",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))

"""Bitstream programs and a builder for constructing them.

A :class:`Program` is the unit BitGen compiles for one regex group
(Section 3.1): it consumes the 8 transposed basis streams ``b0..b7``
and produces one match-marker stream per regex.

:class:`ProgramBuilder` provides the construction API used by the
lowering pass, with value numbering so identical subexpressions (most
importantly shared character classes) are computed once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .instructions import (CONST_END, CONST_ONES, CONST_START, CONST_TEXT,
                           CONST_ZERO, Instr, Op, SkipGuard, Stmt, WhileLoop,
                           count_ops, iter_instrs, render_stmt)

BASIS_VARS = tuple(f"b{i}" for i in range(8))


@dataclass
class Program:
    """A bitstream program over the basis streams."""

    name: str
    statements: List[Stmt] = field(default_factory=list)
    outputs: Dict[str, str] = field(default_factory=dict)
    inputs: Tuple[str, ...] = BASIS_VARS

    def render(self) -> str:
        lines = [f"# program {self.name}",
                 f"# inputs: {', '.join(self.inputs)}"]
        for stmt in self.statements:
            lines.append(render_stmt(stmt))
        for out, var in self.outputs.items():
            lines.append(f"# output {out} = {var}")
        return "\n".join(lines)

    def instruction_count(self) -> int:
        return sum(1 for _ in iter_instrs(self.statements))

    def op_counts(self) -> dict:
        return count_ops(self.statements)

    def while_count(self) -> int:
        return self.op_counts()["while"]

    def variables(self) -> List[str]:
        """All variables defined by the program, in first-definition order."""
        seen: List[str] = []

        def visit(stmts):
            for stmt in stmts:
                if isinstance(stmt, Instr):
                    if stmt.dest not in seen:
                        seen.append(stmt.dest)
                elif isinstance(stmt, WhileLoop):
                    visit(stmt.body)

        visit(self.statements)
        return seen

    def validate(self) -> None:
        """Check def-before-use and guard sanity; raises ValueError."""
        defined = set(self.inputs)

        def visit(stmts):
            for index, stmt in enumerate(stmts):
                if isinstance(stmt, Instr):
                    for arg in stmt.args:
                        if arg not in defined:
                            raise ValueError(
                                f"{stmt.render()}: undefined operand {arg}")
                    defined.add(stmt.dest)
                elif isinstance(stmt, WhileLoop):
                    if stmt.cond not in defined:
                        raise ValueError(
                            f"while({stmt.cond}): undefined condition")
                    visit(stmt.body)
                elif isinstance(stmt, SkipGuard):
                    if stmt.cond not in defined:
                        raise ValueError(
                            f"guard({stmt.cond}): undefined condition")
                    remaining = len(stmts) - index - 1
                    if stmt.skip_count > remaining:
                        raise ValueError(
                            f"guard skips {stmt.skip_count} but only "
                            f"{remaining} statements follow")
                    # A guard may not skip over structured control flow.
                    span = stmts[index + 1:index + 1 + stmt.skip_count]
                    if any(isinstance(s, WhileLoop) for s in span):
                        raise ValueError("guard skips over a while loop")

        visit(self.statements)
        for out, var in self.outputs.items():
            if var not in defined:
                raise ValueError(f"output {out} refers to undefined {var}")


class ProgramBuilder:
    """Constructs a :class:`Program` with value numbering.

    Pure expressions (logic over never-reassigned variables) are
    deduplicated; anything computed inside a while loop or applied to a
    reassigned variable is not, since its value is iteration-dependent.

    ``value_number=False`` turns the deduplication off, emitting one
    instruction per construction call — the raw syntax-directed
    translation an ``opt_level=0`` engine compiles, against which the
    pass pipeline's CSE is measured.
    """

    def __init__(self, name: str = "program",
                 value_number: bool = True):
        self.program = Program(name=name)
        self.value_number = value_number
        self._counter = 0
        self._cse: Dict[tuple, str] = {}
        self._stack: List[List[Stmt]] = [self.program.statements]
        self._mutable: set = set()

    # -- plumbing ------------------------------------------------------------

    def _fresh(self) -> str:
        self._counter += 1
        return f"S{self._counter}"

    def _emit(self, instr: Instr) -> str:
        self._stack[-1].append(instr)
        return instr.dest

    def _in_loop(self) -> bool:
        return len(self._stack) > 1

    def _pure(self, *args: str) -> bool:
        return not any(a in self._mutable for a in args)

    def _value_numbered(self, key: tuple, make) -> str:
        if not self.value_number:
            return make()
        # Reusing a cached pure value is safe anywhere, but caching a new
        # one is only safe at top level: a definition inside a loop body
        # may execute zero times.
        pure = self._pure(*(k for k in key if isinstance(k, str)))
        if pure and key in self._cse:
            return self._cse[key]
        var = make()
        if pure and not self._in_loop():
            self._cse[key] = var
        return var

    # -- instruction emitters -------------------------------------------------

    def _binop(self, op: Op, a: str, b: str) -> str:
        key = (op.value, a, b) if op is not Op.AND and op is not Op.OR \
            else (op.value,) + tuple(sorted((a, b)))
        return self._value_numbered(
            key, lambda: self._emit(Instr(self._fresh(), op, (a, b))))

    def and_(self, a: str, b: str) -> str:
        return self._binop(Op.AND, a, b)

    def or_(self, a: str, b: str) -> str:
        return self._binop(Op.OR, a, b)

    def xor(self, a: str, b: str) -> str:
        return self._binop(Op.XOR, a, b)

    def andn(self, a: str, b: str) -> str:
        return self._binop(Op.ANDN, a, b)

    def not_(self, a: str) -> str:
        return self._value_numbered(
            ("not", a),
            lambda: self._emit(Instr(self._fresh(), Op.NOT, (a,))))

    def advance(self, a: str, distance: int) -> str:
        if distance == 0:
            return a
        return self._value_numbered(
            ("shift", a, distance),
            lambda: self._emit(Instr(self._fresh(), Op.SHIFT, (a,),
                                     shift=distance)))

    def const(self, kind: str) -> str:
        return self._value_numbered(
            ("const", kind),
            lambda: self._emit(Instr(self._fresh(), Op.CONST, const=kind)))

    def zeros(self) -> str:
        return self.const(CONST_ZERO)

    def ones(self) -> str:
        return self.const(CONST_ONES)

    def start_marker(self) -> str:
        return self.const(CONST_START)

    def end_marker(self) -> str:
        return self.const(CONST_END)

    def text_mask(self) -> str:
        return self.const(CONST_TEXT)

    def match_cc(self, cc) -> str:
        return self._value_numbered(
            ("match_cc", cc),
            lambda: self._emit(Instr(self._fresh(), Op.MATCH_CC, cc=cc)))

    def copy(self, a: str) -> str:
        """A fresh, reassignable variable initialised to ``a``."""
        dest = self._fresh()
        self._emit(Instr(dest, Op.COPY, (a,)))
        self._mutable.add(dest)
        return dest

    def assign(self, dest: str, src: str) -> None:
        """Reassign an existing (loop-carried) variable."""
        self._mutable.add(dest)
        self._emit(Instr(dest, Op.COPY, (src,)))

    # -- control flow ----------------------------------------------------------

    def while_loop(self, cond: str) -> "_WhileContext":
        """``with builder.while_loop(cond): ...`` builds a loop body."""
        return _WhileContext(self, cond)

    # -- outputs -----------------------------------------------------------------

    def mark_output(self, name: str, var: str) -> None:
        self.program.outputs[name] = var

    def finish(self) -> Program:
        self.program.validate()
        return self.program


class _WhileContext:
    def __init__(self, builder: ProgramBuilder, cond: str):
        self.builder = builder
        self.loop = WhileLoop(cond=cond)

    def __enter__(self) -> WhileLoop:
        self.builder._stack[-1].append(self.loop)
        self.builder._stack.append(self.loop.body)
        self.builder._mutable.add(self.loop.cond)
        return self.loop

    def __exit__(self, exc_type, exc, tb) -> Optional[bool]:
        self.builder._stack.pop()
        return None

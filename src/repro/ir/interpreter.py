"""Reference interpreter for bitstream programs.

Executes a :class:`Program` over unbounded (full-length) bit vectors —
the semantics icgrep implements on CPUs.  Every GPU execution scheme in
``repro.core`` is validated against this interpreter.

The interpreter can honour :class:`SkipGuard` markers (validating that
Zero Block Skipping never changes results) or ignore them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..bitstream.bitvector import BitVector
from ..bitstream.transpose import transpose
from .instructions import (CONST_END, CONST_ONES, CONST_START, CONST_TEXT,
                           CONST_ZERO, Instr, Op, SkipGuard, Stmt, WhileLoop)
from .program import Program


class ExecutionError(RuntimeError):
    """Raised when a program misbehaves at run time."""


#: Safety valve for fixpoint loops; lowered loops converge in at most
#: ``stream length`` iterations, so exceeding this indicates a bug.
MAX_LOOP_SLACK = 64


def make_environment(data: bytes) -> Dict[str, BitVector]:
    """Initial environment: transposed basis streams padded to n + 1."""
    n = len(data)
    env: Dict[str, BitVector] = {}
    for i, basis in enumerate(transpose(data)):
        env[f"b{i}"] = BitVector(basis.bits, n + 1)
    return env


def const_stream(kind: str, length: int) -> BitVector:
    """Materialise one of the constant streams for total length ``length``
    (``length`` = text length + 1, the cursor stream length)."""
    if kind == CONST_ZERO:
        return BitVector.zeros(length)
    if kind == CONST_ONES:
        return BitVector.ones(length)
    if kind == CONST_START:
        return BitVector(1, length)
    if kind == CONST_END:
        return BitVector(1 << (length - 1), length)
    if kind == CONST_TEXT:
        # 1 at every byte position, 0 at the final cursor slot.
        return BitVector((1 << (length - 1)) - 1, length)
    raise ExecutionError(f"unknown const kind {kind!r}")


def eval_instr(instr: Instr, env: Dict[str, BitVector],
               length: int) -> BitVector:
    """Evaluate one instruction against an environment."""
    if instr.op is Op.CONST:
        return const_stream(instr.const, length)
    if instr.op is Op.MATCH_CC:
        return _match_cc_direct(instr, env, length)
    args = []
    for name in instr.args:
        try:
            args.append(env[name])
        except KeyError:
            raise ExecutionError(f"undefined variable {name}") from None
    if instr.op is Op.AND:
        return args[0] & args[1]
    if instr.op is Op.OR:
        return args[0] | args[1]
    if instr.op is Op.XOR:
        return args[0] ^ args[1]
    if instr.op is Op.ANDN:
        return args[0].andn(args[1])
    if instr.op is Op.NOT:
        return ~args[0]
    if instr.op is Op.SHIFT:
        return args[0].advance(instr.shift)
    if instr.op is Op.COPY:
        return args[0]
    raise ExecutionError(f"unhandled op {instr.op}")


def _match_cc_direct(instr: Instr, env: Dict[str, BitVector],
                     length: int) -> BitVector:
    """Direct evaluation of an unexpanded MATCH_CC for a single byte:
    AND together the 8 basis-plane constraints (Section 2's example for
    'a').  Multi-byte classes must be expanded with :class:`CCCompiler`;
    keeping this primitive singleton-only keeps it a readable mirror of
    the paper's rule."""
    if instr.cc.is_empty():
        return BitVector.zeros(length)
    if not instr.cc.is_single():
        raise ExecutionError(
            "MATCH_CC supports only singleton classes directly; expand "
            "multi-byte classes with CCCompiler")
    byte = instr.cc.single_byte()
    result = const_stream(CONST_TEXT, length)
    for k in range(8):
        basis = env[f"b{k}"]
        if byte >> (7 - k) & 1:
            result = result & basis
        else:
            result = result.andn(basis)
    return result


class Interpreter:
    """Executes programs over full-length streams.

    ``backend`` selects the execution substrate: ``"bigint"`` (default)
    interprets statement-by-statement over Python big integers;
    ``"compiled"`` lowers the program to a cached straight-line NumPy
    kernel (:mod:`repro.backend`) — bit-identical outputs, no
    per-instruction dispatch.
    """

    def __init__(self, honour_guards: bool = False,
                 max_loop_iterations: Optional[int] = None,
                 backend: str = "bigint"):
        if backend not in ("bigint", "compiled"):
            raise ValueError(f"unknown backend {backend!r}")
        self.honour_guards = honour_guards
        self.max_loop_iterations = max_loop_iterations
        self.backend = backend
        self.loop_iteration_counts: List[int] = []
        self.instructions_executed = 0

    def run(self, program: Program, data: bytes) -> Dict[str, BitVector]:
        """Run ``program`` on ``data``; returns output streams by name."""
        if self.backend == "compiled":
            return self._run_compiled(program, data)
        env = make_environment(data)
        length = len(data) + 1
        self.loop_iteration_counts = []
        self.instructions_executed = 0
        self._exec_block(program.statements, env, length)
        return {out: env[var] for out, var in program.outputs.items()}

    def _run_compiled(self, program: Program,
                      data: bytes) -> Dict[str, BitVector]:
        from ..backend import compile_program

        compiled = compile_program(program,
                                   honour_guards=self.honour_guards)
        outputs, stats = compiled.run_data(data)
        self.loop_iteration_counts = stats.iteration_counts()
        self.instructions_executed = program.instruction_count()
        length = len(data) + 1
        mask = (1 << length) - 1
        return {name: BitVector(int.from_bytes(words.tobytes(), "little")
                                & mask, length)
                for name, words in outputs.items()}

    def _exec_block(self, stmts: Sequence[Stmt], env: Dict[str, BitVector],
                    length: int) -> None:
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            if isinstance(stmt, Instr):
                env[stmt.dest] = eval_instr(stmt, env, length)
                self.instructions_executed += 1
                index += 1
            elif isinstance(stmt, WhileLoop):
                self._exec_while(stmt, env, length)
                index += 1
            elif isinstance(stmt, SkipGuard):
                if self.honour_guards and not env[stmt.cond].any():
                    # Skipped definitions are provably zero (guard
                    # validation); materialise the zeros they stand for.
                    zero = BitVector.zeros(length)
                    for skipped in stmts[index + 1:
                                         index + 1 + stmt.skip_count]:
                        if isinstance(skipped, Instr):
                            env[skipped.dest] = zero
                    index += stmt.skip_count + 1
                else:
                    index += 1
            else:
                raise ExecutionError(f"unknown statement {stmt!r}")

    def _exec_while(self, loop: WhileLoop, env: Dict[str, BitVector],
                    length: int) -> None:
        limit = self.max_loop_iterations
        if limit is None:
            limit = length + MAX_LOOP_SLACK
        iterations = 0
        while env[loop.cond].any():
            if iterations >= limit:
                raise ExecutionError(
                    f"while({loop.cond}) exceeded {limit} iterations")
            self._exec_block(loop.body, env, length)
            iterations += 1
        self.loop_iteration_counts.append(iterations)


def match_positions(outputs: Dict[str, BitVector]) -> Dict[str, List[int]]:
    """Convert cursor-set outputs into match *end* positions (cursor - 1),
    dropping the empty match at cursor 0."""
    return {name: stream.match_ends()
            for name, stream in outputs.items()}


def run_regexes(patterns: Iterable, data: bytes) -> Dict[str, List[int]]:
    """Convenience: parse (strings) or take ASTs, lower, run, and report
    match end positions."""
    from ..regex.parser import parse
    from .lower import lower_group

    nodes = [parse(p) if isinstance(p, str) else p for p in patterns]
    program = lower_group(nodes)
    outputs = Interpreter().run(program, data)
    return match_positions(outputs)

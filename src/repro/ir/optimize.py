"""Generic bitstream-program cleanups: copy propagation and dead-code
elimination.

Lowering produces some COPY chains (fixpoint-loop plumbing) and, after
empty-match stripping, occasional unused subcomputations.  These passes
shrink programs before the BitGen-specific transformations run; they
are semantics-preserving and conservative around loop-carried
(reassigned) variables, whose identity is load-bearing.

``optimize_program`` is the classic (opt_level 1) cleanup.  The full
pipeline — CSE, algebraic simplification, shift coalescing, plus these
cleanups run to a joint fixpoint — lives in :mod:`repro.ir.passes`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from .program import Program

_MAX_ROUNDS = 16


def optimize_program(program: Program) -> Program:
    """Copy-propagate and eliminate dead code to a fixpoint."""
    statements = program.statements
    for _ in range(_MAX_ROUNDS):
        mutable = _mutable_vars(statements)
        statements, copies_changed = _propagate_copies(
            statements, mutable, set(program.outputs.values()))
        statements, dce_changed = _eliminate_dead(
            statements, set(program.outputs.values()))
        if not (copies_changed or dce_changed):
            break
    result = Program(name=program.name, statements=statements,
                     outputs=dict(program.outputs), inputs=program.inputs)
    result.validate()
    return result


def _mutable_vars(stmts: Sequence[Stmt]) -> Set[str]:
    defined: Set[str] = set()
    mutable: Set[str] = set()

    def visit(items):
        for stmt in items:
            if isinstance(stmt, Instr):
                if stmt.dest in defined:
                    mutable.add(stmt.dest)
                defined.add(stmt.dest)
            elif isinstance(stmt, WhileLoop):
                visit(stmt.body)

    visit(stmts)
    return mutable


def _propagate_copies(stmts: Sequence[Stmt], mutable: Set[str],
                      outputs: Set[str]) -> Tuple[List[Stmt], int]:
    """Rewrite uses of ``x`` to ``y`` for immutable ``x = COPY(y)`` of
    immutable ``y``.  The copy itself is removed later by DCE unless it
    is an output.  Returns the rewritten statements plus the number of
    statements whose operands actually changed."""
    alias: Dict[str, str] = {}
    changed = 0

    def resolve(name: str) -> str:
        seen = set()
        while name in alias and name not in seen:
            seen.add(name)
            name = alias[name]
        return name

    def visit(items) -> List[Stmt]:
        nonlocal changed
        out: List[Stmt] = []
        for stmt in items:
            if isinstance(stmt, Instr):
                args = tuple(resolve(a) for a in stmt.args)
                if args != stmt.args:
                    changed += 1
                    stmt = Instr(stmt.dest, stmt.op, args,
                                 shift=stmt.shift, cc=stmt.cc,
                                 const=stmt.const)
                if (stmt.op is Op.COPY and stmt.dest not in mutable
                        and stmt.args[0] not in mutable):
                    alias[stmt.dest] = stmt.args[0]
                out.append(stmt)
            elif isinstance(stmt, WhileLoop):
                cond = resolve(stmt.cond)
                if cond != stmt.cond:
                    changed += 1
                out.append(WhileLoop(cond, visit(stmt.body)))
            elif isinstance(stmt, SkipGuard):
                cond = resolve(stmt.cond)
                if cond != stmt.cond:
                    changed += 1
                out.append(SkipGuard(cond, stmt.skip_count))
            else:
                out.append(stmt)
        return out

    return visit(stmts), changed


def _eliminate_dead(stmts: Sequence[Stmt],
                    outputs: Set[str]) -> Tuple[List[Stmt], int]:
    """Drop instructions whose result is never observed.  Conservative:
    anything used anywhere (including loop conditions and guards),
    reassigned, or exported survives.  Guards are rebuilt so their skip
    counts stay aligned with the surviving statements.  Returns the
    surviving statements plus the number of instructions dropped."""
    live: Set[str] = set(outputs)
    mutable = _mutable_vars(stmts)
    changed = 0

    def collect(items):
        for stmt in items:
            if isinstance(stmt, Instr):
                live.update(stmt.args)
            elif isinstance(stmt, WhileLoop):
                live.add(stmt.cond)
                collect(stmt.body)
            elif isinstance(stmt, SkipGuard):
                live.add(stmt.cond)

    collect(stmts)

    def keep(stmt: Instr) -> bool:
        return stmt.dest in live or stmt.dest in mutable

    def visit(items) -> List[Stmt]:
        nonlocal changed
        out: List[Stmt] = []
        pending: List = []  # [guard, remaining original span, kept count]

        def account(survives: bool) -> None:
            for entry in pending:
                if entry[1] > 0:
                    entry[1] -= 1
                    if survives:
                        entry[2] += 1

        for stmt in items:
            if isinstance(stmt, SkipGuard):
                account(True)  # nested guards count toward outer spans
                pending.append([stmt, stmt.skip_count, 0])
                out.append(None)  # placeholder patched below
            elif isinstance(stmt, Instr):
                survives = keep(stmt)
                account(survives)
                if survives:
                    out.append(stmt)
                else:
                    changed += 1
            elif isinstance(stmt, WhileLoop):
                account(True)
                out.append(WhileLoop(stmt.cond, visit(stmt.body)))
        cursor = 0
        for index, item in enumerate(out):
            if item is None:
                guard, _, kept = pending[cursor]
                cursor += 1
                # Zero-span guards are kept as no-ops: dropping one
                # would desynchronise enclosing guards' skip counts.
                out[index] = SkipGuard(guard.cond, kept)
        return out

    return visit(stmts), changed

"""Generic bitstream-program cleanups: copy propagation and dead-code
elimination.

Lowering produces some COPY chains (fixpoint-loop plumbing) and, after
empty-match stripping, occasional unused subcomputations.  These passes
shrink programs before the BitGen-specific transformations run; they
are semantics-preserving and conservative around loop-carried
(reassigned) variables, whose identity is load-bearing.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from .instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from .program import Program

_MAX_ROUNDS = 16


def optimize_program(program: Program) -> Program:
    """Copy-propagate and eliminate dead code to a fixpoint."""
    statements = program.statements
    for _ in range(_MAX_ROUNDS):
        mutable = _mutable_vars(statements)
        propagated = _propagate_copies(statements, mutable,
                                       set(program.outputs.values()))
        cleaned = _eliminate_dead(propagated,
                                  set(program.outputs.values()))
        if _render_all(cleaned) == _render_all(statements):
            statements = cleaned
            break
        statements = cleaned
    result = Program(name=program.name, statements=statements,
                     outputs=dict(program.outputs), inputs=program.inputs)
    result.validate()
    return result


def _render_all(stmts: Sequence[Stmt]) -> str:
    from .instructions import render_stmt

    return "\n".join(render_stmt(s) for s in stmts)


def _mutable_vars(stmts: Sequence[Stmt]) -> Set[str]:
    defined: Set[str] = set()
    mutable: Set[str] = set()

    def visit(items):
        for stmt in items:
            if isinstance(stmt, Instr):
                if stmt.dest in defined:
                    mutable.add(stmt.dest)
                defined.add(stmt.dest)
            elif isinstance(stmt, WhileLoop):
                visit(stmt.body)

    visit(stmts)
    return mutable


def _propagate_copies(stmts: Sequence[Stmt], mutable: Set[str],
                      outputs: Set[str]) -> List[Stmt]:
    """Rewrite uses of ``x`` to ``y`` for immutable ``x = COPY(y)`` of
    immutable ``y``.  The copy itself is removed later by DCE unless it
    is an output."""
    alias: Dict[str, str] = {}

    def resolve(name: str) -> str:
        seen = set()
        while name in alias and name not in seen:
            seen.add(name)
            name = alias[name]
        return name

    def visit(items) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in items:
            if isinstance(stmt, Instr):
                args = tuple(resolve(a) for a in stmt.args)
                if args != stmt.args:
                    stmt = Instr(stmt.dest, stmt.op, args,
                                 shift=stmt.shift, cc=stmt.cc,
                                 const=stmt.const)
                if (stmt.op is Op.COPY and stmt.dest not in mutable
                        and stmt.args[0] not in mutable):
                    alias[stmt.dest] = stmt.args[0]
                out.append(stmt)
            elif isinstance(stmt, WhileLoop):
                out.append(WhileLoop(resolve(stmt.cond),
                                     visit(stmt.body)))
            elif isinstance(stmt, SkipGuard):
                out.append(SkipGuard(resolve(stmt.cond),
                                     stmt.skip_count))
            else:
                out.append(stmt)
        return out

    return visit(stmts)


def _eliminate_dead(stmts: Sequence[Stmt], outputs: Set[str]) -> List[Stmt]:
    """Drop instructions whose result is never observed.  Conservative:
    anything used anywhere (including loop conditions and guards),
    reassigned, or exported survives.  Guards are rebuilt so their skip
    counts stay aligned with the surviving statements."""
    live: Set[str] = set(outputs)
    mutable = _mutable_vars(stmts)

    def collect(items):
        for stmt in items:
            if isinstance(stmt, Instr):
                live.update(stmt.args)
            elif isinstance(stmt, WhileLoop):
                live.add(stmt.cond)
                collect(stmt.body)
            elif isinstance(stmt, SkipGuard):
                live.add(stmt.cond)

    collect(stmts)

    def keep(stmt: Instr) -> bool:
        return stmt.dest in live or stmt.dest in mutable

    def visit(items) -> List[Stmt]:
        out: List[Stmt] = []
        pending: List = []  # [guard, remaining original span, kept count]

        def account(survives: bool) -> None:
            for entry in pending:
                if entry[1] > 0:
                    entry[1] -= 1
                    if survives:
                        entry[2] += 1

        for stmt in items:
            if isinstance(stmt, SkipGuard):
                account(True)  # nested guards count toward outer spans
                pending.append([stmt, stmt.skip_count, 0])
                out.append(None)  # placeholder patched below
            elif isinstance(stmt, Instr):
                survives = keep(stmt)
                account(survives)
                if survives:
                    out.append(stmt)
            elif isinstance(stmt, WhileLoop):
                account(True)
                out.append(WhileLoop(stmt.cond, visit(stmt.body)))
        cursor = 0
        for index, item in enumerate(out):
            if item is None:
                guard, _, kept = pending[cursor]
                cursor += 1
                # Zero-span guards are kept as no-ops: dropping one
                # would desynchronise enclosing guards' skip counts.
                out[index] = SkipGuard(guard.cond, kept)
        return out

    return visit(stmts)

"""Bitstream-program IR (the paper's Listing 2).

A program is a list of *statements*: flat three-address instructions
(:class:`Instr`) plus structured ``while`` loops (:class:`WhileLoop`).
Conditions are bitstream variables; a loop continues while its condition
has at least one set bit (popcount > 0).

``if`` statements never originate from regex lowering (Figure 2 produces
none); they are introduced only by Zero Block Skipping as goto-style
:class:`SkipGuard` markers, matching the paper's CUDA ``goto`` insertion
(Section 6).  Executing a guarded range despite a zero condition never
changes results, so guards are pure optimisation hints.

Shift semantics follow the paper: a positive distance is the paper's
``>>`` (advance: moves cursors forward in the text), negative its ``<<``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..regex.charclass import CharClass


class Op(enum.Enum):
    """Instruction opcodes."""

    AND = "and"
    OR = "or"
    XOR = "xor"
    ANDN = "andn"   # a & ~b
    NOT = "not"
    SHIFT = "shift"
    COPY = "copy"
    CONST = "const"
    MATCH_CC = "match_cc"


#: Opcodes that always map zero inputs to zero outputs (Section 6).
ZERO_PRESERVING = {Op.AND, Op.ANDN, Op.SHIFT, Op.COPY}

#: Constant stream kinds for Op.CONST.
CONST_ZERO = "zero"
CONST_ONES = "ones"
CONST_START = "start"   # single 1 at position 0 (for the ^ anchor)
CONST_END = "end"       # single 1 at the final cursor position (for $)
CONST_TEXT = "text"     # 1 at every byte position, 0 at the final cursor

_CONST_KINDS = (CONST_ZERO, CONST_ONES, CONST_START, CONST_END, CONST_TEXT)


@dataclass(frozen=True)
class Instr:
    """A flat bitstream instruction: ``dest = op(args)``."""

    dest: str
    op: Op
    args: Tuple[str, ...] = ()
    shift: int = 0
    cc: Optional[CharClass] = None
    const: Optional[str] = None

    def __post_init__(self):
        arity = {Op.AND: 2, Op.OR: 2, Op.XOR: 2, Op.ANDN: 2, Op.NOT: 1,
                 Op.SHIFT: 1, Op.COPY: 1, Op.CONST: 0, Op.MATCH_CC: 0}
        if len(self.args) != arity[self.op]:
            raise ValueError(f"{self.op.value} expects {arity[self.op]} "
                             f"operands, got {len(self.args)}")
        if self.op is Op.SHIFT and self.shift == 0:
            raise ValueError("zero-distance shift; use COPY")
        if self.op is Op.CONST and self.const not in _CONST_KINDS:
            raise ValueError(f"bad const kind {self.const!r}")
        if self.op is Op.MATCH_CC and self.cc is None:
            raise ValueError("MATCH_CC needs a character class")

    def is_zero_preserving(self) -> bool:
        return self.op in ZERO_PRESERVING

    def render(self) -> str:
        if self.op is Op.SHIFT:
            sym = ">>" if self.shift > 0 else "<<"
            return f"{self.dest} = {self.args[0]} {sym} {abs(self.shift)}"
        if self.op is Op.NOT:
            return f"{self.dest} = ~{self.args[0]}"
        if self.op is Op.COPY:
            return f"{self.dest} = {self.args[0]}"
        if self.op is Op.CONST:
            return f"{self.dest} = <{self.const}>"
        if self.op is Op.MATCH_CC:
            return f"{self.dest} = match({self.cc!r})"
        if self.op is Op.ANDN:
            return f"{self.dest} = {self.args[0]} &~ {self.args[1]}"
        sym = {Op.AND: "&", Op.OR: "|", Op.XOR: "^"}[self.op]
        return f"{self.dest} = {self.args[0]} {sym} {self.args[1]}"


@dataclass
class WhileLoop:
    """``while (cond): body`` — runs while ``cond`` has any set bit."""

    cond: str
    body: List["Stmt"] = field(default_factory=list)

    def render(self, indent: str = "") -> str:
        lines = [f"{indent}while ({self.cond}):"]
        for stmt in self.body:
            lines.append(render_stmt(stmt, indent + "    "))
        return "\n".join(lines)


@dataclass(frozen=True)
class SkipGuard:
    """Goto-style zero guard: if ``cond`` is all zero in the current
    block, skip the next ``skip_count`` statements of the same region."""

    cond: str
    skip_count: int

    def render(self) -> str:
        return f"if (!{self.cond}) goto +{self.skip_count}"


Stmt = Union[Instr, WhileLoop, SkipGuard]


def render_stmt(stmt: Stmt, indent: str = "") -> str:
    if isinstance(stmt, WhileLoop):
        return stmt.render(indent)
    return indent + stmt.render()


def stmt_uses(stmt: Stmt) -> Tuple[str, ...]:
    """Variables read directly by a statement (loop bodies excluded)."""
    if isinstance(stmt, Instr):
        return stmt.args
    if isinstance(stmt, WhileLoop):
        return (stmt.cond,)
    return (stmt.cond,)


def iter_instrs(stmts: List[Stmt]):
    """All Instr nodes in a statement list, recursing into loops."""
    for stmt in stmts:
        if isinstance(stmt, Instr):
            yield stmt
        elif isinstance(stmt, WhileLoop):
            yield from iter_instrs(stmt.body)


def count_ops(stmts: List[Stmt]) -> dict:
    """Instruction-mix histogram in the paper's Table 1 categories.

    ANDN counts as one ``and`` plus one ``not``; XOR counts as ``or``
    (both are single-cycle bitwise ops of the same family).
    """
    counts = {"and": 0, "or": 0, "not": 0, "shift": 0, "while": 0}

    def visit(items):
        for stmt in items:
            if isinstance(stmt, WhileLoop):
                counts["while"] += 1
                visit(stmt.body)
            elif isinstance(stmt, Instr):
                if stmt.op is Op.AND:
                    counts["and"] += 1
                elif stmt.op is Op.ANDN:
                    counts["and"] += 1
                    counts["not"] += 1
                elif stmt.op in (Op.OR, Op.XOR):
                    counts["or"] += 1
                elif stmt.op is Op.NOT:
                    counts["not"] += 1
                elif stmt.op is Op.SHIFT:
                    counts["shift"] += 1

    visit(stmts)
    return counts

"""Shared scope/guard bookkeeping for the structural passes.

Every pass in this package walks statement blocks with the same two
pieces of conservatism:

* **Loop scoping.**  Facts learned inside a ``WhileLoop`` body must not
  escape it — a body may execute zero times, so a definition made there
  is not available to statements after the loop.  Facts from enclosing
  blocks *are* visible inside the body (def-before-use across a loop
  entry is fine: the def ran before the loop did).  ``ScopeChain``
  models this as a stack of dicts.

* **Guard spans.**  Statements covered by a ``SkipGuard`` may be
  skipped at runtime, with their destinations zero-filled in the
  environment.  Reading such a destination from *outside* the span is
  only sound when the guard inserter proved the value zero under the
  skip condition — a property individual passes cannot re-derive.  The
  safe discipline, used by every pass here, is: statements inside a
  span may be *rewritten in place* (to something value-equal given the
  same environment) but never *registered* as facts for later reuse.
  ``GuardTracker`` reports whether the current statement sits inside
  any open span.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, TypeVar

_V = TypeVar("_V")


class ScopeChain(Generic[_V]):
    """A stack of fact dictionaries with enclosing-scope lookup."""

    def __init__(self) -> None:
        self._stack: List[Dict[str, _V]] = [{}]

    def push(self) -> None:
        self._stack.append({})

    def pop(self) -> None:
        self._stack.pop()

    def get(self, key: str) -> Optional[_V]:
        for scope in reversed(self._stack):
            if key in scope:
                return scope[key]
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def set(self, key: str, value: _V) -> None:
        self._stack[-1][key] = value

    def discard(self, key: str) -> None:
        """Remove ``key`` from every level (used when a var is found to
        no longer match a previously registered fact)."""
        for scope in self._stack:
            scope.pop(key, None)


class GuardTracker:
    """Tracks open ``SkipGuard`` spans within one statement block.

    Usage per statement, in order:

    * ``in_span()`` — whether the *next* statement is covered;
    * ``step()`` — consume one slot from each open span (the statement
      itself, guard or not, occupies a slot of every enclosing span);
    * ``open(count)`` — after ``step()``, when the statement was a
      guard, open its own span.

    Spans never cross block boundaries (``Program.validate`` forbids
    guards skipping over while loops), so each block gets a fresh
    tracker.
    """

    def __init__(self) -> None:
        self._remaining: List[int] = []

    def in_span(self) -> bool:
        return any(count > 0 for count in self._remaining)

    def step(self) -> None:
        self._remaining = [count - 1 for count in self._remaining
                          if count > 1]

    def open(self, count: int) -> None:
        if count > 0:
            self._remaining.append(count)

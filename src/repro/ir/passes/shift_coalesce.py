"""Shift coalescing: merge chains of SHIFT-only dataflow.

``y = x >> a; d = y >> b`` becomes ``d = x >> (a + b)`` whenever the
two distances point the same direction; the inner shift dies through
DCE once nothing else reads it.  Every merged link removes one barrier
pair from the interleaved simulator and one ``_shu``/``_shd`` word loop
from the compiled backend, which is where the rebalancer's long literal
chains pay this off.

Same-sign only: bits shifted past either end of the stream are lost, so
``(x >> a) << a != x`` in general — opposite-direction links do not
compose.  Same-sign sums also never reach zero, so the rewrite always
stays a valid ``SHIFT``.

Chains collapse transitively in one run: a rewritten shift is itself
registered, so ``((x >> 1) >> 1) >> 1`` needs one pass, not three.

Conservatism matches the other passes: the outer and inner destinations
and the ultimate source must all be immutable (a reassigned source
would make the merged shift read a different value than the inner shift
saw), inner definitions are only visible within their own block scope,
and definitions inside ``SkipGuard`` spans are not registered — though
a span-resident *outer* shift may still be rewritten, since the merged
form reads the same environment.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..optimize import _mutable_vars
from ..program import Program
from ._scopes import GuardTracker, ScopeChain


def _same_sign(a: int, b: int) -> bool:
    return (a > 0) == (b > 0)


def coalesce_shift_chains(program: Program) -> Tuple[Program, int]:
    """Return ``(program, changes)`` with shift-of-shift links merged."""
    mutable = _mutable_vars(program.statements)
    shifts: ScopeChain[Instr] = ScopeChain()  # var -> its SHIFT def
    changed = 0

    def visit(items: Sequence[Stmt]) -> List[Stmt]:
        nonlocal changed
        out: List[Stmt] = []
        guards = GuardTracker()
        for stmt in items:
            if isinstance(stmt, Instr):
                in_span = guards.in_span()
                guards.step()
                if (stmt.op is Op.SHIFT and stmt.dest not in mutable
                        and stmt.args[0] not in mutable):
                    inner = shifts.get(stmt.args[0])
                    if (inner is not None
                            and inner.args[0] not in mutable
                            and _same_sign(inner.shift, stmt.shift)):
                        changed += 1
                        stmt = Instr(stmt.dest, Op.SHIFT, (inner.args[0],),
                                     shift=inner.shift + stmt.shift)
                    if not in_span:
                        shifts.set(stmt.dest, stmt)
                out.append(stmt)
            elif isinstance(stmt, WhileLoop):
                guards.step()
                shifts.push()
                body = visit(stmt.body)
                shifts.pop()
                out.append(WhileLoop(stmt.cond, body))
            elif isinstance(stmt, SkipGuard):
                guards.step()
                guards.open(stmt.skip_count)
                out.append(stmt)
            else:
                guards.step()
                out.append(stmt)
        return out

    result = Program(name=program.name, statements=visit(program.statements),
                     outputs=dict(program.outputs), inputs=program.inputs)
    return result, changed

"""Pass pipeline: run the structural passes to a joint fixpoint.

``optimize_pipeline(program, level)`` is the single entry point the
engine uses:

* ``level 0`` — identity (no pipeline, empty report);
* ``level 1`` — the classic cleanups (copy propagation + DCE), i.e.
  what :func:`repro.ir.optimize.optimize_program` does;
* ``level 2`` — the full pipeline: copy propagation → CSE → algebraic
  simplification → shift coalescing → DCE, rounds repeated until no
  pass reports a change.

Pass ordering inside a round matters for convergence speed, not
correctness: copy propagation first exposes structural twins to CSE,
CSE's COPYs feed the next round's propagation, algebraic folds mint
constants that cascade, coalescing runs on propagated operands, and DCE
sweeps the corpses so later rounds scan less.  Any order reaches the
same fixpoint because every pass is semantics-preserving on its own.

The :class:`PipelineReport` records per-pass statement rewrites and
static instruction deltas; the engine attaches it to each compiled
group and surfaces it through ``BitGenEngine.optimization_stats()``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ... import obs
from ..instructions import iter_instrs
from ..optimize import _eliminate_dead, _mutable_vars, _propagate_copies
from ..program import Program
from .algebraic import simplify_algebraic
from .cse import eliminate_common_subexpressions
from .shift_coalesce import coalesce_shift_chains

_MAX_ROUNDS = 16

_REG = obs.registry()
_PASS_REWRITES = _REG.counter(
    "repro_opt_pass_rewrites_total",
    "Statements rewritten or dropped, per optimizer pass")
_PASS_OPS_REMOVED = _REG.counter(
    "repro_opt_pass_ops_removed_total",
    "Net static instructions removed, per optimizer pass")
_PIPELINE_RUNS = _REG.counter(
    "repro_opt_pipeline_runs_total",
    "Pass-pipeline executions, labelled by opt level")
_PIPELINE_SECONDS = _REG.histogram(
    "repro_opt_pipeline_seconds",
    "Wall time of one pass-pipeline run to fixpoint")

Pass = Callable[[Program], Tuple[Program, int]]


def _instr_count(program: Program) -> int:
    return sum(1 for _ in iter_instrs(program.statements))


def copy_propagation(program: Program) -> Tuple[Program, int]:
    """The cleanup half-passes from :mod:`repro.ir.optimize`, exposed
    under the pipeline's ``(program) -> (program, changes)`` protocol."""
    mutable = _mutable_vars(program.statements)
    stmts, changes = _propagate_copies(
        program.statements, mutable, set(program.outputs.values()))
    return Program(name=program.name, statements=stmts,
                   outputs=dict(program.outputs),
                   inputs=program.inputs), changes


def dead_code_elimination(program: Program) -> Tuple[Program, int]:
    stmts, changes = _eliminate_dead(
        program.statements, set(program.outputs.values()))
    return Program(name=program.name, statements=stmts,
                   outputs=dict(program.outputs),
                   inputs=program.inputs), changes


#: (name, pass) in round order for each opt level.
LEVEL1_PASSES: Tuple[Tuple[str, Pass], ...] = (
    ("copy_prop", copy_propagation),
    ("dce", dead_code_elimination),
)

LEVEL2_PASSES: Tuple[Tuple[str, Pass], ...] = (
    ("copy_prop", copy_propagation),
    ("cse", eliminate_common_subexpressions),
    ("algebraic", simplify_algebraic),
    ("shift_coalesce", coalesce_shift_chains),
    ("dce", dead_code_elimination),
)

#: Level 2 without CSE, for the engine's zero-skipping path: global CSE
#: merges subexpressions *across* zero paths, interleaving chains that
#: the guard inserter needs contiguous and collapsing the skippable
#: spans (measured on Dotstar: more executed ops despite fewer static
#: instructions).  Zero-skipping schemes therefore run this before
#: ``insert_guards`` and the full pipeline after — CSE never registers
#: facts inside a guard span, so post-guard sharing cannot cross one.
LEVEL2_PREGUARD_PASSES: Tuple[Tuple[str, Pass], ...] = tuple(
    entry for entry in LEVEL2_PASSES if entry[0] != "cse")


@dataclass
class PassDelta:
    """Cumulative effect of one named pass across all rounds."""

    name: str
    rewrites: int = 0      # statements rewritten or dropped
    ops_removed: int = 0   # net static-instruction delta

    def to_dict(self) -> Dict[str, int]:
        return {"rewrites": self.rewrites, "ops_removed": self.ops_removed}


@dataclass
class PipelineReport:
    """Per-pass accounting for one (or a merged pair of) pipeline runs."""

    program: str
    level: int
    before: int
    after: int
    rounds: int = 0
    passes: List[PassDelta] = field(default_factory=list)

    @property
    def ops_removed(self) -> int:
        return self.before - self.after

    def delta(self, name: str) -> PassDelta:
        for entry in self.passes:
            if entry.name == name:
                return entry
        entry = PassDelta(name)
        self.passes.append(entry)
        return entry

    def merged_with(self, other: "PipelineReport") -> "PipelineReport":
        """Combine a pre-rebalance and a post-rebalance run.  ``before``
        comes from the first run and ``after`` from the second, so the
        rebalancer's own additions between them can make the combined
        ``ops_removed`` smaller than the per-pass sum."""
        merged = PipelineReport(program=self.program, level=other.level,
                                before=self.before, after=other.after,
                                rounds=self.rounds + other.rounds)
        for source in (self.passes, other.passes):
            for entry in source:
                target = merged.delta(entry.name)
                target.rewrites += entry.rewrites
                target.ops_removed += entry.ops_removed
        return merged

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "level": self.level,
            "instrs_before": self.before,
            "instrs_after": self.after,
            "ops_removed": self.ops_removed,
            "rounds": self.rounds,
            "passes": {entry.name: entry.to_dict()
                       for entry in self.passes},
        }


class PassPipeline:
    """Runs a pass list round-robin until a full round changes nothing."""

    def __init__(self, passes: Sequence[Tuple[str, Pass]],
                 level: int = 2, max_rounds: int = _MAX_ROUNDS):
        self.passes = tuple(passes)
        self.level = level
        self.max_rounds = max_rounds

    def run(self, program: Program) -> Tuple[Program, PipelineReport]:
        begin = time.perf_counter()
        report = PipelineReport(program=program.name, level=self.level,
                                before=_instr_count(program),
                                after=_instr_count(program))
        with obs.span("optimize", category="compile",
                      program=program.name, level=self.level) as root:
            for _ in range(self.max_rounds):
                round_changes = 0
                for name, fn in self.passes:
                    before = _instr_count(program)
                    with obs.span(f"pass:{name}",
                                  category="compile") as sp:
                        program, changes = fn(program)
                    removed = before - _instr_count(program)
                    if sp.is_recording:
                        sp.set(rewrites=changes, ops_removed=removed)
                    delta = report.delta(name)
                    delta.rewrites += changes
                    delta.ops_removed += removed
                    round_changes += changes
                report.rounds += 1
                if not round_changes:
                    break
            report.after = _instr_count(program)
            if root.is_recording:
                root.set(rounds=report.rounds, before=report.before,
                         after=report.after)
        program.validate()
        # The registry mirrors exactly what the report carries, so the
        # harness rows and a Prometheus scrape can never disagree.
        _PIPELINE_RUNS.inc(level=self.level)
        for delta in report.passes:
            if delta.rewrites or delta.ops_removed:
                _PASS_REWRITES.inc(delta.rewrites, pass_name=delta.name)
                _PASS_OPS_REMOVED.inc(delta.ops_removed,
                                      pass_name=delta.name)
        _PIPELINE_SECONDS.observe(time.perf_counter() - begin)
        return program, report


def optimize_pipeline(program: Program, level: int = 2,
                      passes: Sequence[Tuple[str, Pass]] = None
                      ) -> Tuple[Program, PipelineReport]:
    """Optimize ``program`` at ``level``; returns the program and the
    per-pass report (empty at level 0).  ``passes`` overrides the
    level's default pass list (still gated on ``level > 0``)."""
    if level <= 0:
        count = _instr_count(program)
        return program, PipelineReport(program=program.name, level=0,
                                       before=count, after=count)
    if passes is None:
        passes = LEVEL1_PASSES if level == 1 else LEVEL2_PASSES
    return PassPipeline(passes, level=level).run(program)

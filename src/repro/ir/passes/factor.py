"""Cross-pattern prologue factoring.

A group's program is the concatenation of its member patterns' chains
over a shared pool of definitions: character-class streams, constant
streams, and (after CSE) shared subexpression prefixes.  This pass
factors that shared pool into an explicit *once-per-bucket prologue*:

1. **Loop-invariant hoisting** — a pure instruction inside a fixpoint
   ``while`` body whose operands are all defined before the loop is
   recomputed every iteration for the same value.  It moves to just
   before its (outermost) loop.  This is the executed-op win: loop
   bodies pay per iteration, the prologue pays once.
2. **Prologue grouping** — top-level pure definitions that are shared
   (used more than once, or leaf ``CONST``/``MATCH_CC`` definitions)
   move — with their pure dependency cones, in original relative
   order — to the top of the program, ahead of the first per-pattern
   chain.  Homogeneous buckets (``grouping="fingerprint"``) then carry
   their entire shared pool in one contiguous prologue, which keeps
   the per-pattern remainder identical across members and is what the
   kernel fingerprint cache collapses.

Both rewrites preserve order among the statements they do not move, so
def-before-use is maintained: a hoisted instruction's operands are
inputs or earlier-hoisted definitions by construction.  Purity here
means "single-assignment and not a COPY" — loop-carried (reassigned)
variables and aliases are never touched.

The pass refuses programs containing :class:`SkipGuard`s: guard skip
counts index into the statement list, and moving a statement across a
span would desynchronise them.  The engine runs it pre-guard only.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..optimize import _mutable_vars
from ..program import Program


def _has_guards(stmts: List[Stmt]) -> bool:
    for stmt in stmts:
        if isinstance(stmt, SkipGuard):
            return True
        if isinstance(stmt, WhileLoop) and _has_guards(stmt.body):
            return True
    return False


def _use_counts(program: Program) -> Dict[str, int]:
    uses: Dict[str, int] = {}

    def visit(items):
        for stmt in items:
            if isinstance(stmt, Instr):
                for arg in stmt.args:
                    uses[arg] = uses.get(arg, 0) + 1
            elif isinstance(stmt, WhileLoop):
                uses[stmt.cond] = uses.get(stmt.cond, 0) + 1
                visit(stmt.body)
            elif isinstance(stmt, SkipGuard):
                uses[stmt.cond] = uses.get(stmt.cond, 0) + 1

    visit(program.statements)
    for var in program.outputs.values():
        uses[var] = uses.get(var, 0) + 1
    return uses


def factor_prologue(program: Program) -> Tuple[Program, int]:
    """Hoist loop-invariant pure instructions out of fixpoint loops
    and group the shared pure prologue at the program top.  Pipeline
    pass protocol: returns ``(program, changes)``; idempotent (a
    second run reports zero changes)."""
    stmts = list(program.statements)
    if _has_guards(stmts):
        return program, 0
    mutable = _mutable_vars(stmts)
    changes = 0

    # -- stage 1: loop-invariant code motion ------------------------------
    def invariant(stmt: Stmt, defined: Set[str]) -> bool:
        return (isinstance(stmt, Instr)
                and stmt.dest not in mutable
                and stmt.op is not Op.COPY
                and all(arg in defined for arg in stmt.args))

    def drain_loop(loop: WhileLoop,
                   defined: Set[str]) -> Tuple[List[Instr], WhileLoop]:
        """Pull invariant instrs out of ``loop`` (recursively); they
        land immediately before the loop, so their dests extend
        ``defined`` for later body statements."""
        hoisted: List[Instr] = []
        body: List[Stmt] = []
        for stmt in loop.body:
            if isinstance(stmt, WhileLoop):
                sub, inner = drain_loop(stmt, defined)
                hoisted.extend(sub)
                body.append(inner)
            elif invariant(stmt, defined):
                hoisted.append(stmt)
                defined.add(stmt.dest)
            else:
                body.append(stmt)
        return hoisted, WhileLoop(loop.cond, body)

    defined: Set[str] = set(program.inputs)
    flat: List[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, WhileLoop):
            hoisted, loop = drain_loop(stmt, defined)
            changes += len(hoisted)
            flat.extend(hoisted)
            flat.append(loop)
        else:
            if isinstance(stmt, Instr) and stmt.dest not in mutable:
                defined.add(stmt.dest)
            flat.append(stmt)

    # -- stage 2: shared-prologue grouping --------------------------------
    # Maximal prefix-closed set of pure top-level definitions ...
    pure: Dict[str, Instr] = {}
    inputs = set(program.inputs)
    for stmt in flat:
        if (isinstance(stmt, Instr) and stmt.dest not in mutable
                and stmt.op is not Op.COPY
                and all(arg in inputs or arg in pure
                        for arg in stmt.args)):
            pure[stmt.dest] = stmt
    # ... rooted at the shared definitions (multi-use, or the leaf
    # CONST/MATCH_CC streams every member chain draws from) ...
    uses = _use_counts(program)
    roots = [dest for dest, stmt in pure.items()
             if stmt.op in (Op.CONST, Op.MATCH_CC)
             or uses.get(dest, 0) >= 2]
    # ... closed backwards over their pure dependency cones.
    hoist: Set[str] = set()
    stack = list(roots)
    while stack:
        dest = stack.pop()
        if dest in hoist:
            continue
        hoist.add(dest)
        stack.extend(arg for arg in pure[dest].args if arg in pure)

    prologue = [s for s in flat
                if isinstance(s, Instr) and s.dest in hoist]
    if flat[:len(prologue)] != prologue:
        remainder = [s for s in flat
                     if not (isinstance(s, Instr) and s.dest in hoist)]
        moved = sum(1 for before, after in zip(flat, prologue)
                    if before is not after)
        changes += max(1, moved)
        flat = prologue + remainder

    if not changes:
        return program, 0
    result = Program(name=program.name, statements=flat,
                     outputs=dict(program.outputs),
                     inputs=program.inputs)
    return result, changes

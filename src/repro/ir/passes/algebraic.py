"""Algebraic simplification and constant folding.

Identities over bitstreams, seeded from ``CONST`` definitions:

===========================  ==========================
``x & x``                    ``x``
``x & <ones>``               ``x``
``x & <zero>``               ``<zero>``
``x | x``                    ``x``
``x | <zero>``               ``x``
``x | <ones>``               ``<ones>``
``x ^ x``                    ``<zero>``
``x ^ <zero>``               ``x``
``x ^ <ones>``               ``~x``
``x &~ x``                   ``<zero>``
``x &~ <zero>``              ``x``
``x &~ <ones>``              ``<zero>``
``<zero> &~ x``              ``<zero>``
``<ones> &~ x``              ``~x``
``~~x``                      ``x``
``~<zero>``                  ``<ones>``
``~<ones>``                  ``<zero>``
``<zero> >> n``              ``<zero>``
``match(empty-class)``       ``<zero>``
===========================  ==========================

Rewrites replace one instruction with one instruction (a ``COPY``, a
``CONST``, or a cheaper op), so block statement counts — and with them
``SkipGuard.skip_count`` spans — are untouched.  Folded constants
cascade within a single run: once ``d`` is rewritten to ``<zero>`` it
immediately participates in later folds.

The conservatism mirrors :mod:`repro.ir.passes.cse`: loop-carried
variables are never touched, facts learned in a loop body or inside a
guard span never escape it, and span-resident instructions may be
rewritten (the replacement reads the same environment) but never
contribute facts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..instructions import (CONST_ONES, CONST_ZERO, Instr, Op, SkipGuard,
                            Stmt, WhileLoop)
from ..optimize import _mutable_vars
from ..program import Program
from ._scopes import GuardTracker, ScopeChain


def simplify_algebraic(program: Program) -> Tuple[Program, int]:
    """Return ``(program, changes)`` with algebraic identities folded."""
    mutable = _mutable_vars(program.statements)
    kinds: ScopeChain[str] = ScopeChain()   # var -> "zero" | "ones"
    defs: ScopeChain[Instr] = ScopeChain()  # var -> defining Instr
    changed = 0

    def kind_of(name: str) -> Optional[str]:
        if name in mutable:
            return None
        return kinds.get(name)

    def visit(items: Sequence[Stmt]) -> List[Stmt]:
        nonlocal changed
        out: List[Stmt] = []
        guards = GuardTracker()
        for stmt in items:
            if isinstance(stmt, Instr):
                in_span = guards.in_span()
                guards.step()
                rewritten = _simplify(stmt)
                if rewritten is not None:
                    changed += 1
                    stmt = rewritten
                if stmt.dest not in mutable and not in_span:
                    defs.set(stmt.dest, stmt)
                    if stmt.op is Op.CONST and stmt.const in (
                            CONST_ZERO, CONST_ONES):
                        kinds.set(stmt.dest, stmt.const)
                out.append(stmt)
            elif isinstance(stmt, WhileLoop):
                guards.step()
                kinds.push()
                defs.push()
                body = visit(stmt.body)
                kinds.pop()
                defs.pop()
                out.append(WhileLoop(stmt.cond, body))
            elif isinstance(stmt, SkipGuard):
                guards.step()
                guards.open(stmt.skip_count)
                out.append(stmt)
            else:
                guards.step()
                out.append(stmt)
        return out

    def _simplify(instr: Instr) -> Optional[Instr]:
        if instr.dest in mutable or any(a in mutable for a in instr.args):
            return None
        d = instr.dest

        def copy(src: str) -> Instr:
            return Instr(d, Op.COPY, (src,))

        def const(kind: str) -> Instr:
            return Instr(d, Op.CONST, const=kind)

        if instr.op in (Op.AND, Op.OR, Op.XOR, Op.ANDN):
            a, b = instr.args
            ka, kb = kind_of(a), kind_of(b)
            if instr.op is Op.AND:
                if a == b or kb == CONST_ONES:
                    return copy(a)
                if ka == CONST_ONES:
                    return copy(b)
                if ka == CONST_ZERO:
                    return copy(a)
                if kb == CONST_ZERO:
                    return copy(b)
            elif instr.op is Op.OR:
                if a == b or kb == CONST_ZERO:
                    return copy(a)
                if ka == CONST_ZERO:
                    return copy(b)
                if ka == CONST_ONES:
                    return copy(a)
                if kb == CONST_ONES:
                    return copy(b)
            elif instr.op is Op.XOR:
                if a == b:
                    return const(CONST_ZERO)
                if kb == CONST_ZERO:
                    return copy(a)
                if ka == CONST_ZERO:
                    return copy(b)
                if kb == CONST_ONES:
                    return Instr(d, Op.NOT, (a,))
                if ka == CONST_ONES:
                    return Instr(d, Op.NOT, (b,))
            else:  # ANDN: a & ~b
                if a == b or ka == CONST_ZERO or kb == CONST_ONES:
                    return const(CONST_ZERO)
                if kb == CONST_ZERO:
                    return copy(a)
                if ka == CONST_ONES:
                    return Instr(d, Op.NOT, (b,))
            return None
        if instr.op is Op.NOT:
            (a,) = instr.args
            ka = kind_of(a)
            if ka == CONST_ZERO:
                return const(CONST_ONES)
            if ka == CONST_ONES:
                return const(CONST_ZERO)
            inner = defs.get(a)
            if (inner is not None and inner.op is Op.NOT
                    and inner.args[0] not in mutable):
                return copy(inner.args[0])
            return None
        if instr.op is Op.SHIFT:
            if kind_of(instr.args[0]) == CONST_ZERO:
                return copy(instr.args[0])
            return None
        if instr.op is Op.MATCH_CC:
            if instr.cc is not None and instr.cc.is_empty():
                return const(CONST_ZERO)
            return None
        return None

    result = Program(name=program.name, statements=visit(program.statements),
                     outputs=dict(program.outputs), inputs=program.inputs)
    return result, changed

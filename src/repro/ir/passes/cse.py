"""Common-subexpression elimination for bitstream programs.

Lowering value-numbers expressions through ``ProgramBuilder``, but only
at the top level — loop bodies are never cached (they may execute more
than once over mutating state), and the rebalancer introduces fresh
names for expressions that already exist under another name.  This pass
closes both gaps structurally: two instructions with the same operation,
operands, shift distance, const kind, and character class compute the
same stream, so the later one becomes a ``COPY`` of the earlier
destination.  Copy propagation and DCE then erase the copy.

Rewriting in place (rather than deleting) keeps the statement count of
every block unchanged, so ``SkipGuard.skip_count`` spans stay aligned
without any rebuild here.

Conservatism:

* instructions whose destination or any operand is loop-carried
  (reassigned) are neither rewritten nor registered — their identity is
  positional, not structural;
* ``AND``/``OR``/``XOR`` operand order is normalised so commutative
  duplicates still match;
* expressions computed inside a loop body are only reused within that
  body (the body may run zero times); facts flow *into* loops but never
  out;
* expressions computed inside a ``SkipGuard`` span are never registered
  — when the guard fires their destinations are zero-filled, which is
  only known sound for the reads the guard inserter analysed, not for
  new aliases this pass would mint.  They may still be *replaced* by an
  earlier out-of-span twin: a COPY reading the twin sees the same
  environment the original operands did.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..instructions import Instr, Op, SkipGuard, Stmt, WhileLoop
from ..optimize import _mutable_vars
from ..program import Program
from ._scopes import GuardTracker, ScopeChain

_COMMUTATIVE = frozenset((Op.AND, Op.OR, Op.XOR))


def _key(instr: Instr):
    args = instr.args
    if instr.op in _COMMUTATIVE:
        args = tuple(sorted(args))
    cc = instr.cc.ranges if instr.cc is not None else None
    return (instr.op.value, args, instr.shift, instr.const, cc)


def eliminate_common_subexpressions(
        program: Program) -> Tuple[Program, int]:
    """Return ``(program, changes)`` with structural duplicates turned
    into ``COPY`` of their first occurrence."""
    mutable = _mutable_vars(program.statements)
    table: ScopeChain[str] = ScopeChain()
    changed = 0

    def visit(items: Sequence[Stmt]) -> List[Stmt]:
        nonlocal changed
        out: List[Stmt] = []
        guards = GuardTracker()
        for stmt in items:
            if isinstance(stmt, Instr):
                in_span = guards.in_span()
                guards.step()
                stmt = _rewrite(stmt, in_span)
                out.append(stmt)
            elif isinstance(stmt, WhileLoop):
                guards.step()
                table.push()
                body = visit(stmt.body)
                table.pop()
                out.append(WhileLoop(stmt.cond, body))
            elif isinstance(stmt, SkipGuard):
                guards.step()
                guards.open(stmt.skip_count)
                out.append(stmt)
            else:
                guards.step()
                out.append(stmt)
        return out

    def _rewrite(instr: Instr, in_span: bool) -> Instr:
        nonlocal changed
        if instr.dest in mutable or any(a in mutable for a in instr.args):
            return instr
        if instr.op is Op.COPY:
            return instr  # copy propagation's job
        key = _key(instr)
        prior = table.get(key)
        if prior is not None and prior != instr.dest:
            changed += 1
            return Instr(instr.dest, Op.COPY, (prior,))
        if prior is None and not in_span:
            table.set(key, instr.dest)
        return instr

    result = Program(name=program.name, statements=visit(program.statements),
                     outputs=dict(program.outputs), inputs=program.inputs)
    return result, changed

"""Structural optimization passes over bitstream programs.

:mod:`repro.ir.optimize` holds the opt_level-1 cleanups (copy
propagation + DCE).  This package adds the opt_level-2 pipeline:

* :mod:`repro.ir.passes.cse` — common-subexpression elimination
* :mod:`repro.ir.passes.algebraic` — constant folding / simplification
* :mod:`repro.ir.passes.shift_coalesce` — SHIFT-chain merging
* :mod:`repro.ir.passes.pipeline` — ``PassPipeline`` running all of the
  above plus the cleanups to a joint fixpoint, with per-pass deltas
  collected in a ``PipelineReport``.
"""

from .algebraic import simplify_algebraic
from .cse import eliminate_common_subexpressions
from .factor import factor_prologue
from .pipeline import (LEVEL1_PASSES, LEVEL2_PASSES,
                       LEVEL2_PREGUARD_PASSES, PassDelta, PassPipeline,
                       PipelineReport, optimize_pipeline)
from .shift_coalesce import coalesce_shift_chains

__all__ = [
    "LEVEL1_PASSES",
    "LEVEL2_PASSES",
    "LEVEL2_PREGUARD_PASSES",
    "PassDelta",
    "PassPipeline",
    "PipelineReport",
    "coalesce_shift_chains",
    "eliminate_common_subexpressions",
    "factor_prologue",
    "optimize_pipeline",
    "simplify_algebraic",
]

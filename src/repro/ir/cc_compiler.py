"""Character-class compiler: byte sets → boolean ops over basis bits.

A character class is matched with parallel bitwise logic over the 8
transposed basis streams (Section 2: 'a' is ``~b0 & b1 & b2 & ~b3 & ~b4
& ~b5 & ~b6 & b7``).  Arbitrary classes are compiled by Shannon
expansion over the bit planes, most-significant first, which yields
compact expressions for the range-shaped classes regexes use.

Subexpressions are memoised here per subcube and value-numbered by the
builder, so classes shared between regexes in a group are computed once.
"""

from __future__ import annotations

from typing import Dict, Union

from ..regex.charclass import CharClass
from .program import BASIS_VARS, ProgramBuilder

#: Symbolic boolean constants used during expansion.
TRUE = True
FALSE = False

_Expr = Union[bool, str]


class CCCompiler:
    """Compiles character classes into instructions on one builder."""

    def __init__(self, builder: ProgramBuilder):
        self.builder = builder
        self._memo: Dict[tuple, _Expr] = {}
        self._results: Dict[CharClass, str] = {}

    def compile(self, cc: CharClass) -> str:
        """Emit instructions computing the match stream of ``cc``;
        returns the result variable."""
        if cc in self._results and self.builder.value_number:
            return self._results[cc]
        expr = self._expand(0, cc._mask())
        var = self._finalize(cc, expr)
        self._results[cc] = var
        return var

    def _finalize(self, cc: CharClass, expr: _Expr) -> str:
        builder = self.builder
        if expr is FALSE:
            var = builder.zeros()
        elif expr is TRUE:
            var = builder.text_mask()
        elif cc.contains(0):
            # Padding beyond the text reads as 0x00 in the basis streams,
            # so any class containing NUL must be masked to byte positions.
            var = builder.and_(expr, builder.text_mask())
        else:
            var = expr
        return var

    def _expand(self, depth: int, submask: int) -> _Expr:
        """Shannon expansion over bit plane ``depth`` (0 = MSB).

        ``submask`` is the membership mask of the current subcube: bit j
        set means the byte whose low ``8 - depth`` bits equal j is in the
        class.
        """
        size = 1 << (8 - depth)
        full = (1 << size) - 1
        if submask == 0:
            return FALSE
        if submask == full:
            return TRUE
        # Subcube sharing is value numbering one level up; a builder
        # compiling raw (opt_level=0) code must not get it for free.
        key = (depth, submask)
        if key in self._memo and self.builder.value_number:
            return self._memo[key]

        half = size // 2
        low = submask & ((1 << half) - 1)      # bytes with bit ``depth`` = 0
        high = submask >> half                 # bytes with bit ``depth`` = 1
        e0 = self._expand(depth + 1, low)
        e1 = self._expand(depth + 1, high)
        basis = BASIS_VARS[depth]
        expr = self._combine(basis, e0, e1)
        self._memo[key] = expr
        return expr

    def _combine(self, basis: str, e0: _Expr, e1: _Expr) -> _Expr:
        """(~basis & e0) | (basis & e1), simplified."""
        builder = self.builder
        if e0 is FALSE and e1 is FALSE:
            return FALSE
        if e0 is TRUE and e1 is TRUE:
            return TRUE
        if e0 is FALSE:
            if e1 is TRUE:
                return basis
            return builder.and_(basis, e1)
        if e1 is FALSE:
            if e0 is TRUE:
                return builder.not_(basis)
            return builder.andn(e0, basis)
        if e0 is TRUE:
            # ~basis | e1
            return builder.not_(builder.andn(basis, e1))
        if e1 is TRUE:
            # basis | e0
            return builder.or_(basis, e0)
        if e0 == e1:
            return e0
        return builder.or_(builder.andn(e0, basis),
                           builder.and_(basis, e1))


def match_byte_table(cc: CharClass) -> list:
    """256-entry truth table; used by tests to validate compilation."""
    return list(cc.table())

"""Lowering regexes to bitstream programs (the paper's Figure 2).

The lowering uses the *cursor* marker convention: a marker bit at
position *i* means matching may continue by consuming the byte at *i*.
This is the paper's ends-at convention advanced by one position; it
handles zero-width prefixes (``a*b``, ``x?y``, anchors) uniformly.
Streams have length ``n + 1`` so a cursor can rest after the last byte;
reported match *end* positions are ``cursor - 1``.

Per Figure 2:

* character class: ``M' = advance(M & S_cc, 1)``
* concatenation: rule chaining
* alternation: union of branch markers
* Kleene star: a fixpoint ``while`` loop accumulating reachable cursors
* bounded repetition ``{n,m}``: ``n`` chained applications, then up to
  ``m - n`` optional ones OR-ed together

All character classes of a group are compiled up front (as in the
paper's Listing 3, where ``S1..S4 = match(text_trans, CCs)`` precedes
the loop) so loop bodies reuse hoisted match streams.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..regex import ast
from ..regex.nonempty import strip_empty
from ..regex.simplify import simplify
from .cc_compiler import CCCompiler
from .program import Program, ProgramBuilder


class LoweringError(ValueError):
    """Raised when a regex cannot be lowered."""


class _Lowerer:
    def __init__(self, builder: ProgramBuilder):
        self.builder = builder
        self.ccs = CCCompiler(builder)
        self._cc_vars: Dict[object, str] = {}

    def prepare(self, node: ast.Regex) -> None:
        """Hoist all character-class match streams of ``node``."""
        for sub in node.walk():
            if isinstance(sub, ast.Lit):
                if sub.cc not in self._cc_vars:
                    self._cc_vars[sub.cc] = self.ccs.compile(sub.cc)

    def lower(self, node: ast.Regex, marker: str) -> str:
        """Emit instructions matching ``node`` from cursor set ``marker``;
        returns the resulting cursor-set variable."""
        builder = self.builder
        if isinstance(node, ast.Empty):
            return marker
        if isinstance(node, ast.Lit):
            cc_var = self._cc_vars.get(node.cc)
            if cc_var is None:
                cc_var = self.ccs.compile(node.cc)
                self._cc_vars[node.cc] = cc_var
            return builder.advance(builder.and_(marker, cc_var), 1)
        if isinstance(node, ast.Seq):
            for part in node.parts:
                marker = self.lower(part, marker)
            return marker
        if isinstance(node, ast.Alt):
            result = self.lower(node.branches[0], marker)
            for branch in node.branches[1:]:
                result = builder.or_(result, self.lower(branch, marker))
            return result
        if isinstance(node, ast.Star):
            return self._star(node.body, marker)
        if isinstance(node, ast.Rep):
            return self._repetition(node, marker)
        if isinstance(node, ast.Anchor):
            anchor = (builder.start_marker() if node.kind == ast.Anchor.START
                      else builder.end_marker())
            return builder.and_(marker, anchor)
        raise LoweringError(f"cannot lower {node!r}")

    def _star(self, body: ast.Regex, marker: str) -> str:
        """Figure 2 (e): fixpoint accumulation of cursors reachable by
        repeated application of ``body``."""
        builder = self.builder
        accum = builder.copy(marker)
        frontier = builder.copy(marker)
        with builder.while_loop(frontier):
            advanced = self.lower(body, frontier)
            fresh = builder.andn(advanced, accum)
            builder.assign(frontier, fresh)
            builder.assign(accum, builder.or_(accum, fresh))
        return accum

    def _repetition(self, node: ast.Rep, marker: str) -> str:
        """Figure 2 (d), generalised to arbitrary bodies and open bounds."""
        builder = self.builder
        current = marker
        for _ in range(node.lo):
            current = self.lower(node.body, current)
        if node.hi is None:
            return self._star(node.body, current)
        result = current
        for _ in range(node.hi - node.lo):
            current = self.lower(node.body, current)
            result = builder.or_(result, current)
        return result


def lower_regex(node: ast.Regex, name: str = "R0",
                builder: Optional[ProgramBuilder] = None,
                normalise: bool = True,
                value_number: bool = True) -> Program:
    """Lower one regex AST into a complete program."""
    return lower_group([node], names=[name], builder=builder,
                       normalise=normalise, value_number=value_number)


def lower_group(nodes: Sequence[ast.Regex],
                names: Optional[Sequence[str]] = None,
                builder: Optional[ProgramBuilder] = None,
                normalise: bool = True,
                value_number: bool = True) -> Program:
    """Lower a group of regexes into one shared program (Section 3.1:
    each CTA runs the program of one regex group).

    Outputs are cursor-set streams, one per regex; match end positions
    are each set cursor minus one.

    ``value_number=False`` emits the raw syntax-directed translation
    with no construction-time deduplication (subexpression sharing is
    the optimizer's job at ``opt_level >= 1``; an ``opt_level=0``
    engine compiles this form untouched).
    """
    if names is None:
        names = [f"R{i}" for i in range(len(nodes))]
    if len(names) != len(nodes):
        raise ValueError("names/nodes length mismatch")
    if builder is None:
        builder = ProgramBuilder(name="+".join(names) or "empty_group",
                                 value_number=value_number)
    lowerer = _Lowerer(builder)
    prepared = []
    for node in nodes:
        if normalise:
            node = simplify(node)
        # Only non-empty matches have end positions; strip the empty
        # match so outputs mark exactly the reportable cursors.
        stripped = strip_empty(node)
        prepared.append(simplify(stripped) if stripped is not None else None)
    for node in prepared:
        if node is not None:
            lowerer.prepare(node)
    initial = builder.ones()
    for name, node in zip(names, prepared):
        if node is None:
            result = builder.zeros()
        else:
            result = lowerer.lower(node, initial)
        builder.mark_output(name, result)
    return builder.finish()

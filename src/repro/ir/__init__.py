"""Bitstream-program IR: instructions, programs, lowering, interpretation."""

from .cc_compiler import CCCompiler
from .dfg import RegionDFG, split_regions
from .instructions import (CONST_END, CONST_ONES, CONST_START, CONST_TEXT,
                           CONST_ZERO, Instr, Op, SkipGuard, Stmt, WhileLoop,
                           count_ops, iter_instrs)
from .interpreter import (ExecutionError, Interpreter, const_stream,
                          make_environment, match_positions, run_regexes)
from .lower import LoweringError, lower_group, lower_regex
from .optimize import optimize_program
from .passes import (PassPipeline, PipelineReport, coalesce_shift_chains,
                     eliminate_common_subexpressions, optimize_pipeline,
                     simplify_algebraic)
from .program import BASIS_VARS, Program, ProgramBuilder

__all__ = [
    "BASIS_VARS", "CCCompiler", "CONST_END", "CONST_ONES", "CONST_START",
    "CONST_TEXT", "CONST_ZERO", "ExecutionError", "Instr", "Interpreter",
    "LoweringError", "Op", "PassPipeline", "PipelineReport", "Program",
    "ProgramBuilder", "RegionDFG", "SkipGuard", "Stmt", "WhileLoop",
    "coalesce_shift_chains", "const_stream", "count_ops",
    "eliminate_common_subexpressions", "iter_instrs", "lower_group",
    "lower_regex", "make_environment", "match_positions",
    "optimize_pipeline", "optimize_program", "run_regexes",
    "simplify_algebraic", "split_regions",
]

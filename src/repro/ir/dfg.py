"""Dataflow graphs over straight-line instruction regions.

The compiler passes (overlap analysis, Shift Rebalancing, Zero Block
Skipping) operate on *regions*: maximal straight-line runs of
instructions.  Variables may be redefined (loop-carried values), so
edges connect each use to the most recent prior definition; operands
with no prior definition in the region are region inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .instructions import Instr


@dataclass
class RegionDFG:
    """Dataflow graph of one straight-line region."""

    instrs: Sequence[Instr]
    #: producers[i][j] is the index of the instruction defining operand j
    #: of instruction i, or None when it is a region input.
    producers: List[Tuple[Optional[int], ...]] = field(default_factory=list)
    #: consumers[i] lists (user index, operand position) pairs.
    consumers: List[List[Tuple[int, int]]] = field(default_factory=list)
    #: region inputs: variables read before any local definition.
    external_uses: Dict[str, List[Tuple[int, int]]] = field(
        default_factory=dict)

    @classmethod
    def build(cls, instrs: Sequence[Instr]) -> "RegionDFG":
        dfg = cls(instrs=list(instrs))
        last_def: Dict[str, int] = {}
        dfg.consumers = [[] for _ in instrs]
        for index, instr in enumerate(instrs):
            producer_row = []
            for operand_pos, arg in enumerate(instr.args):
                producer = last_def.get(arg)
                producer_row.append(producer)
                if producer is None:
                    dfg.external_uses.setdefault(arg, []).append(
                        (index, operand_pos))
                else:
                    dfg.consumers[producer].append((index, operand_pos))
            dfg.producers.append(tuple(producer_row))
            last_def[instr.dest] = index
        return dfg

    def depth(self, index: int) -> int:
        """Longest producer chain length ending at ``index`` (inputs = 0)."""
        return self._depths()[index]

    def _depths(self) -> List[int]:
        if not hasattr(self, "_depth_cache"):
            depths: List[int] = []
            for index in range(len(self.instrs)):
                producer_depths = [depths[p] for p in self.producers[index]
                                   if p is not None]
                depths.append(1 + max(producer_depths, default=0))
            self._depth_cache = depths
        return self._depth_cache

    def critical_path_length(self) -> int:
        depths = self._depths()
        return max(depths, default=0)

    def is_live_after(self, index: int, defined_outputs: Sequence[str]) -> bool:
        """True when instruction ``index``'s value escapes the region:
        it is an output variable or the last definition of a variable
        read after the region (conservatively, any final definition)."""
        var = self.instrs[index].dest
        for later in range(index + 1, len(self.instrs)):
            if self.instrs[later].dest == var:
                return False  # redefined before region end
        return True if var in defined_outputs else self._is_final_def(index)

    def _is_final_def(self, index: int) -> bool:
        var = self.instrs[index].dest
        return all(self.instrs[later].dest != var
                   for later in range(index + 1, len(self.instrs)))


def split_regions(stmts) -> List[List[Instr]]:
    """Split a statement list into straight-line regions, recursing into
    while-loop bodies.  Guards terminate nothing (they are hints inside a
    region), while loops split regions."""
    from .instructions import SkipGuard, WhileLoop

    regions: List[List[Instr]] = []
    current: List[Instr] = []
    for stmt in stmts:
        if isinstance(stmt, Instr):
            current.append(stmt)
        elif isinstance(stmt, WhileLoop):
            if current:
                regions.append(current)
                current = []
            regions.extend(split_regions(stmt.body))
        elif isinstance(stmt, SkipGuard):
            continue
    if current:
        regions.append(current)
    return regions

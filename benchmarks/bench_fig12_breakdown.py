"""Figure 12 / Table 3: the optimization breakdown.

Adds the techniques one at a time — Base, DTM- (static mapping), DTM
(dynamic), SR (shift rebalancing), ZBS (zero-block skipping) — and
reports per-app speedup over Base.  Shapes to check: monotone
improvement on average; DTM- already strong on shift-heavy Yara; the
DTM step matters most for control-intensive Brill/Protomata; ZBS helps
sparse suites (paper calls out Dotstar).
"""

from repro.core.schemes import SCHEME_LADDER, Scheme
from repro.perf.model import geometric_mean
from repro.perf.paper_data import FIGURE12_AVG_SPEEDUP
from repro.perf.report import format_table

from conftest import APP_NAMES


def test_fig12_breakdown(ctx, benchmark):
    speedup = {scheme: {} for scheme in SCHEME_LADDER}
    for app in APP_NAMES:
        base = ctx.run_bitgen(app, Scheme.BASE)
        for scheme in SCHEME_LADDER:
            run = ctx.run_bitgen(app, scheme)
            speedup[scheme][app] = run.mbps / max(base.mbps, 1e-9)

    rows = []
    for app in APP_NAMES:
        rows.append([app] + [round(speedup[s][app], 1)
                             for s in SCHEME_LADDER])
    gmeans = {s: geometric_mean(list(speedup[s].values()))
              for s in SCHEME_LADDER}
    rows.append(["Gmean"] + [round(gmeans[s], 1) for s in SCHEME_LADDER])
    print()
    print(format_table(["App"] + [s.value for s in SCHEME_LADDER], rows,
                       title="Figure 12 — speedup over the Base scheme"))
    print(f"paper average after SR: {FIGURE12_AVG_SPEEDUP['SR']}x, "
          f"after ZBS: {FIGURE12_AVG_SPEEDUP['ZBS']}x")

    # Shape assertions (Table 3 ladder).
    assert gmeans[Scheme.DTM] > gmeans[Scheme.DTM_MINUS] > 1.0, \
        "each DTM stage improves on Base on average"
    assert gmeans[Scheme.SR] > gmeans[Scheme.DTM], \
        "Shift Rebalancing improves on DTM (paper: 17.6x over Base)"
    assert gmeans[Scheme.ZBS] >= gmeans[Scheme.SR] * 0.95, \
        "ZBS holds or improves the average (paper: 24.9x over Base)"
    # Control-intensive apps need the dynamic analysis most.
    brill_gain = speedup[Scheme.DTM]["Brill"] \
        / max(speedup[Scheme.DTM_MINUS]["Brill"], 1e-9)
    yara_gain = speedup[Scheme.DTM]["Yara"] \
        / max(speedup[Scheme.DTM_MINUS]["Yara"], 1e-9)
    assert brill_gain > yara_gain, \
        "DTM's dynamic step helps Brill more than shift-heavy Yara"

    workload = ctx.harness.workload("Ranges1")
    engine = ctx.harness.bitgen_engine(workload, Scheme.SR)
    benchmark(engine.match, workload.data)

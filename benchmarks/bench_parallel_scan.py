"""Sharded parallel scan throughput: serial vs 2 vs 4 workers.

Not a paper experiment — this measures the reproduction's own dispatch
layer.  A multi-stream scan (the DPI deployment shape: many packets,
one compiled engine) runs through ``BitGenEngine.match_many`` serially
and through the sharded dispatcher at 2 and 4 workers, and every
parallel run is checked bit-identical to serial before it is timed.
Results land in ``BENCH_parallel.json`` as streams/sec and MB/s per
worker count.

Two input shapes are measured:

* **large** — 24 streams of 16-64KB (≈1MB total), above the
  ``min_parallel_bytes`` threshold, so workers genuinely dispatch;
* **small** — the original 48 tiny streams (≈60KB total) that the
  previous revision showed running 2.4-2.7x *slower* through process
  workers than serially.  With the threshold in place the same config
  now falls back to serial dispatch (``last_dispatch`` records
  ``serial-small-input``), so the pathological rows collapse to ≈1x.

Speedup honesty: process pools cannot beat serial on a single-CPU
container, so the ">= serial" floor is asserted everywhere but the
scaling assertion only arms when the machine actually has the cores
(``os.cpu_count()``/affinity >= 2).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.engine import BitGenEngine
from repro.parallel.config import ScanConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

PATTERNS = ["a(bc)*d", "colou?r", "cat|dog", "[0-9][0-9]", "xy+z",
            "virus[0-9]+", "GET /[a-z]+", "foo", "bar", "qux"]

WORKER_COUNTS = (1, 2, 4)


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_streams(count: int, lengths) -> list:
    base = (b"abcbcd colour cat 42 xyyz virus7 GET /index "
            b"foo bar qux color abcd " * 1200)
    # Several length classes so the stream shard planner has real work.
    return [base[:lengths[index % len(lengths)]]
            for index in range(count)]


def compile_engine(workers: int) -> BitGenEngine:
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(backend="compiled", cta_count=4,
                                    loop_fallback=True, workers=workers,
                                    executor="process"))


def best_of(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return best, result


def measure(streams, repeat=3):
    """Serial vs workers over one stream set; asserts bit-identity."""
    total_bytes = sum(len(s) for s in streams)
    reference = None
    rows = []
    for workers in WORKER_COUNTS:
        engine = compile_engine(workers)
        engine.match_many(streams)       # warm: compile + seed cache
        seconds, results = best_of(lambda: engine.match_many(streams),
                                   repeat)
        if reference is None:
            reference = results
        else:
            for left, right in zip(results, reference):
                assert left.ends == right.ends
                assert left.metrics == right.metrics
        rows.append({
            "workers": workers,
            "dispatch": engine.last_dispatch,
            "seconds": seconds,
            "streams_per_sec": len(streams) / seconds,
            "mbps": total_bytes / seconds / 1e6,
            "faults": len(engine.last_scan_faults),
        })
    return total_bytes, rows


def test_parallel_scan_throughput():
    large = build_streams(24, [16384, 32768, 49152, 65536])
    small = build_streams(48, [512, 1024, 1536, 2048])

    large_bytes, large_rows = measure(large)
    small_bytes, small_rows = measure(small)

    def speedups(rows):
        serial = rows[0]["streams_per_sec"]
        return {str(r["workers"]): r["streams_per_sec"] / serial
                for r in rows}

    payload = {
        "benchmark": "sharded parallel scan (match_many, compiled)",
        "patterns": len(PATTERNS),
        "cpus": available_cpus(),
        "min_parallel_bytes": ScanConfig().min_parallel_bytes,
        "large": {
            "streams": len(large),
            "input_bytes": large_bytes,
            "rows": large_rows,
            "speedup_vs_serial": speedups(large_rows),
        },
        "small_input_fallback": {
            "streams": len(small),
            "input_bytes": small_bytes,
            "rows": small_rows,
            "speedup_vs_serial": speedups(small_rows),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    for title, nbytes, rows in (("large", large_bytes, large_rows),
                                ("small", small_bytes, small_rows)):
        print(f"{title}: bytes={nbytes} cpus={available_cpus()}")
        for row in rows:
            print(f"  workers={row['workers']} "
                  f"[{row['dispatch']}]: "
                  f"{row['streams_per_sec']:9.1f} streams/s "
                  f"{row['mbps']:7.2f} MB/s  faults={row['faults']}")

    # The large set is above the threshold, so workers really dispatch.
    for row in large_rows[1:]:
        assert row["dispatch"] == "parallel"
    # The small set is below it: the engine must refuse the pool (the
    # 2.4-2.7x slowdown the previous revision recorded) and fall back.
    for row in small_rows[1:]:
        assert row["dispatch"] == "serial-small-input"
    # Fallback rows run the serial path, so they cannot be pathological:
    # allow scheduling noise but nothing near the old 2.4x regression.
    small_serial = small_rows[0]["streams_per_sec"]
    for row in small_rows[1:]:
        assert row["streams_per_sec"] >= 0.5 * small_serial

    # Scaling only exists where cores do; on a single-CPU container the
    # dispatcher must merely not lose correctness (asserted above) and
    # the numbers are recorded for the JSON artefact.
    if available_cpus() >= 4:
        by_workers = {r["workers"]: r["streams_per_sec"]
                      for r in large_rows}
        assert by_workers[4] >= 2.0 * by_workers[1]

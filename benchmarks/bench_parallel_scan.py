"""Sharded parallel scan throughput: serial vs 2 vs 4 workers.

Not a paper experiment — this measures the reproduction's own dispatch
layer.  A multi-stream scan (the DPI deployment shape: many packets,
one compiled engine) runs through ``BitGenEngine.match_many`` serially
and through the sharded dispatcher at 2 and 4 workers, and every
parallel run is checked bit-identical to serial before it is timed.
Results land in ``BENCH_parallel.json`` as streams/sec and MB/s per
worker count.

Speedup honesty: process pools cannot beat serial on a single-CPU
container, so the ">= serial" floor is asserted everywhere but the
scaling assertion only arms when the machine actually has the cores
(``os.cpu_count()``/affinity >= 2).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.engine import BitGenEngine
from repro.parallel.config import ScanConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

PATTERNS = ["a(bc)*d", "colou?r", "cat|dog", "[0-9][0-9]", "xy+z",
            "virus[0-9]+", "GET /[a-z]+", "foo", "bar", "qux"]

STREAM_COUNT = 48
WORKER_COUNTS = (1, 2, 4)


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_streams():
    base = (b"abcbcd colour cat 42 xyyz virus7 GET /index "
            b"foo bar qux color abcd " * 40)
    # Several length classes so the stream shard planner has real work.
    lengths = [512, 1024, 1536, 2048]
    return [base[:lengths[index % len(lengths)]]
            for index in range(STREAM_COUNT)]


def compile_engine(workers: int) -> BitGenEngine:
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(backend="compiled", cta_count=4,
                                    loop_fallback=True, workers=workers,
                                    executor="process"))


def best_of(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return best, result


def test_parallel_scan_throughput():
    streams = build_streams()
    total_bytes = sum(len(s) for s in streams)
    reference = None
    rows = []
    for workers in WORKER_COUNTS:
        engine = compile_engine(workers)
        engine.match_many(streams)       # warm: compile + seed cache
        seconds, results = best_of(lambda: engine.match_many(streams))
        if reference is None:
            reference = results
        else:
            for left, right in zip(results, reference):
                assert left.ends == right.ends
                assert left.metrics == right.metrics
        rows.append({
            "workers": workers,
            "executor": "process" if workers > 1 else "serial",
            "seconds": seconds,
            "streams_per_sec": len(streams) / seconds,
            "mbps": total_bytes / seconds / 1e6,
            "faults": len(engine.last_scan_faults),
        })

    serial = rows[0]["streams_per_sec"]
    payload = {
        "benchmark": "sharded parallel scan (match_many, compiled)",
        "patterns": len(PATTERNS),
        "streams": len(streams),
        "input_bytes": total_bytes,
        "cpus": available_cpus(),
        "rows": rows,
        "speedup_vs_serial": {str(r["workers"]):
                              r["streams_per_sec"] / serial
                              for r in rows},
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"streams={len(streams)} bytes={total_bytes} "
          f"cpus={available_cpus()}")
    for row in rows:
        print(f"  workers={row['workers']}: "
              f"{row['streams_per_sec']:9.1f} streams/s "
              f"{row['mbps']:7.2f} MB/s  faults={row['faults']}")

    # Scaling only exists where cores do; on a single-CPU container the
    # dispatcher must merely not lose correctness (asserted above) and
    # the numbers are recorded for the JSON artefact.
    if available_cpus() >= 4:
        by_workers = {r["workers"]: r["streams_per_sec"] for r in rows}
        assert by_workers[4] >= 2.0 * by_workers[1]

"""Sharded parallel scan throughput: serial vs 2 vs 4 workers.

Not a paper experiment — this measures the reproduction's own dispatch
layer.  A multi-stream scan (the DPI deployment shape: many packets,
one compiled engine) runs through ``BitGenEngine.match_many`` serially
and through the sharded dispatcher at 2 and 4 workers, and every
parallel run is checked bit-identical to serial before it is timed.
Results land in ``BENCH_parallel.json`` as streams/sec and MB/s per
worker count.

Two input shapes are measured:

* **large** — 24 streams of 16-64KB (≈1MB total), above the
  ``min_parallel_bytes`` threshold, so workers genuinely dispatch
  through the zero-copy shared-memory path on a persistent warm pool;
* **small** — the original 48 tiny streams (≈60KB total) that an
  earlier revision showed running 2.4-2.7x *slower* through process
  workers than serially.  With the threshold in place the same config
  now falls back to serial dispatch (``last_dispatch`` records
  ``serial-small-input``), so the pathological rows collapse to ≈1x.

Speedup honesty: process pools cannot beat serial on a single-CPU
container.  Rather than silently blessing such a run, the payload
carries ``flags: ["single-cpu"]`` whenever the machine has fewer than
two usable cores, and the scaling assertions arm only when the cores
exist (``parallel >= serial`` at 2 workers needs >= 2 CPUs; the 2x
floor at 4 workers needs >= 4).  Every row records the CPU count, the
process start method, and whether its pool was warm or cold, so a
regression report can always be read against the machine it ran on.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.engine import BitGenEngine
from repro.parallel import shutdown
from repro.parallel.config import ScanConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

PATTERNS = ["a(bc)*d", "colou?r", "cat|dog", "[0-9][0-9]", "xy+z",
            "virus[0-9]+", "GET /[a-z]+", "foo", "bar", "qux"]

WORKER_COUNTS = (1, 2, 4)


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_streams(count: int, lengths) -> list:
    base = (b"abcbcd colour cat 42 xyyz virus7 GET /index "
            b"foo bar qux color abcd " * 1200)
    # Several length classes so the stream shard planner has real work.
    return [base[:lengths[index % len(lengths)]]
            for index in range(count)]


def compile_engine(workers: int) -> BitGenEngine:
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(backend="compiled", cta_count=4,
                                    loop_fallback=True, workers=workers,
                                    executor="process"))


def best_of(fn, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return best, result


def measure(streams, repeat=3):
    """Serial vs workers over one stream set; asserts bit-identity."""
    total_bytes = sum(len(s) for s in streams)
    cpus = available_cpus()
    reference = None
    rows = []
    for workers in WORKER_COUNTS:
        engine = compile_engine(workers)
        config = engine.config
        engine.match_many(streams)       # warm: compile + pool + cache
        seconds, results = best_of(lambda: engine.match_many(streams),
                                   repeat)
        if reference is None:
            reference = results
        else:
            for left, right in zip(results, reference):
                assert left.ends == right.ends
                assert left.metrics == right.metrics
        rows.append({
            "workers": workers,
            "dispatch": engine.last_dispatch,
            # "warm" after the warm-up dispatch above parked a
            # persistent pool; "cold" would mean the pool was rebuilt
            # (or discarded) between runs — a perf bug worth seeing.
            "pool": getattr(engine, "last_pool_state", "none"),
            "cpus": cpus,
            "start_method": config.resolved_start_method(),
            "seconds": seconds,
            "streams_per_sec": len(streams) / seconds,
            "mbps": total_bytes / seconds / 1e6,
            "faults": len(engine.last_scan_faults),
        })
    return total_bytes, rows


def run_benchmark() -> dict:
    large = build_streams(24, [16384, 32768, 49152, 65536])
    small = build_streams(48, [512, 1024, 1536, 2048])

    large_bytes, large_rows = measure(large)
    small_bytes, small_rows = measure(small)
    cpus = available_cpus()

    def speedups(rows):
        serial = rows[0]["streams_per_sec"]
        return {str(r["workers"]): r["streams_per_sec"] / serial
                for r in rows}

    flags = []
    if cpus < 2:
        # Do not let a single-CPU container bless a speedup claim: the
        # numbers below are recorded, not meaningful as scaling.
        flags.append("single-cpu")

    payload = {
        "benchmark": "sharded parallel scan (match_many, compiled)",
        "patterns": len(PATTERNS),
        "cpus": cpus,
        "start_method": ScanConfig().resolved_start_method(),
        "flags": flags,
        "min_parallel_bytes": ScanConfig().min_parallel_bytes,
        "large": {
            "streams": len(large),
            "input_bytes": large_bytes,
            "rows": large_rows,
            "speedup_vs_serial": speedups(large_rows),
        },
        "small_input_fallback": {
            "streams": len(small),
            "input_bytes": small_bytes,
            "rows": small_rows,
            "speedup_vs_serial": speedups(small_rows),
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    if flags:
        print(f"WARNING: flags={flags} — parallel speedups cannot be "
              f"demonstrated on this machine (cpus={cpus}); rows are "
              f"recorded for the artefact, not asserted as scaling.")
    for title, nbytes, rows in (("large", large_bytes, large_rows),
                                ("small", small_bytes, small_rows)):
        print(f"{title}: bytes={nbytes} cpus={cpus}")
        for row in rows:
            print(f"  workers={row['workers']} "
                  f"[{row['dispatch']}/{row['pool']}"
                  f"/{row['start_method']}]: "
                  f"{row['streams_per_sec']:9.1f} streams/s "
                  f"{row['mbps']:7.2f} MB/s  faults={row['faults']}")
    return payload


def check_assertions(payload: dict) -> None:
    cpus = payload["cpus"]
    large_rows = payload["large"]["rows"]
    small_rows = payload["small_input_fallback"]["rows"]

    # The large set is above the threshold, so workers really dispatch,
    # and the persistent pool parked by the warm-up run must be reused.
    for row in large_rows[1:]:
        assert row["dispatch"] == "parallel"
        assert row["pool"] == "warm", \
            f"workers={row['workers']} re-built its pool mid-benchmark"
    # The small set is below it: the engine must refuse the pool (the
    # 2.4-2.7x slowdown the previous revision recorded) and fall back.
    for row in small_rows[1:]:
        assert row["dispatch"] == "serial-small-input"
    # Fallback rows run the serial path, so they cannot be pathological:
    # allow scheduling noise but nothing near the old 2.4x regression.
    small_serial = small_rows[0]["streams_per_sec"]
    for row in small_rows[1:]:
        assert row["streams_per_sec"] >= 0.5 * small_serial

    # Scaling only exists where cores do; on a single-CPU container the
    # dispatcher must merely not lose correctness (bit-identity was
    # asserted during measurement) and the run is flagged, not blessed.
    by_workers = {r["workers"]: r["streams_per_sec"]
                  for r in large_rows}
    if cpus >= 2:
        assert by_workers[2] >= by_workers[1], \
            (f"parallel (2 workers) slower than serial on a "
             f"{cpus}-CPU machine: {by_workers[2]:.1f} vs "
             f"{by_workers[1]:.1f} streams/s")
    else:
        assert payload["flags"] == ["single-cpu"]
    if cpus >= 4:
        assert by_workers[4] >= 2.0 * by_workers[1]


def test_parallel_scan_throughput():
    payload = run_benchmark()
    check_assertions(payload)


if __name__ == "__main__":
    try:
        check_assertions(run_benchmark())
    finally:
        shutdown()
    print(f"wrote {OUTPUT}")

"""Table 4: fusion level vs memory behaviour.

Per-CTA averages for Base / DTM- / DTM: number of fused loops,
materialised intermediate bitstreams, and DRAM read/write traffic.
Shapes to check (paper, per CTA on 1 MB inputs): loops 260.7 -> 17.6 ->
1, intermediates 317.8 -> 54.2 -> 0, DRAM from hundreds of MB to ~0.2.
"""

from repro.core.schemes import Scheme
from repro.perf.paper_data import TABLE4
from repro.perf.report import format_table

from conftest import APP_NAMES

SCHEMES = (Scheme.BASE, Scheme.DTM_MINUS, Scheme.DTM)


def per_cta_average(ctx, scheme, field):
    values = []
    for app in APP_NAMES:
        run = ctx.run_bitgen(app, scheme)
        factor = ctx.harness.extrapolation(
            ctx.harness.workload(app)).input_factor
        for metrics in run.cta_metrics:
            value = getattr(metrics, field) if isinstance(field, str) \
                else field(metrics)
            values.append(value * (factor if callable(field) else 1))
    return sum(values) / len(values)


def test_table4(ctx, benchmark):
    rows = []
    measured = {}
    for scheme in SCHEMES:
        loops = per_cta_average(ctx, scheme, "fused_loops")
        intermediates = per_cta_average(ctx, scheme,
                                        "intermediate_streams")
        reads = per_cta_average(ctx, scheme,
                                lambda m: m.dram_read_bytes / 1e6)
        writes = per_cta_average(ctx, scheme,
                                 lambda m: m.dram_write_bytes / 1e6)
        measured[scheme] = (loops, intermediates, reads, writes)
        paper = TABLE4[scheme.value]
        rows.append([scheme.value, round(loops, 1),
                     round(intermediates, 1), round(reads, 2),
                     round(writes, 2),
                     f"{paper['loops']}/{paper['intermediates']}/"
                     f"{paper['dram_read_mb']}/{paper['dram_write_mb']}"])
    print()
    print(format_table(
        ["Scheme", "#Loop", "#Intermediate", "DRAM Rd (MB)",
         "DRAM Wr (MB)", "paper (loop/int/rd/wr)"], rows,
        title="Table 4 — per-CTA fusion/memory profile "
              "(DRAM extrapolated to 1 MB inputs)"))

    base, dtm_minus, dtm = (measured[s] for s in SCHEMES)
    assert base[0] > dtm_minus[0] > dtm[0] == 1.0, \
        "fusion collapses the loop count to exactly 1 (Table 4)"
    assert base[1] > dtm_minus[1] > dtm[1] == 0.0, \
        "full interleaving materialises no intermediates"
    assert base[2] + base[3] > 10 * (dtm[2] + dtm[3]), \
        "DTM cuts DRAM traffic by orders of magnitude"

    workload = ctx.harness.workload("TCP")
    engine = ctx.harness.bitgen_engine(workload, Scheme.BASE)
    benchmark(engine.match, workload.data)

"""Compiled NumPy backend vs the simulating executors on the Table 2
harness path.

Not a paper experiment — this measures the reproduction's own engine
room.  The Table 2 cells execute every CTA through the per-window
interleaved *simulation* (which is what produces the modelled metrics);
the compiled backend answers the same matches through cached straight-
line NumPy kernels with batched CTA dispatch.  The paper's claim that
JIT-specialised fused kernels beat interpretive execution is mirrored
here: the compiled path must be at least 5x faster wall-clock, and the
kernel cache must show hits (structurally repeated groups and repeated
cells recompile nothing).
"""

import time

from repro.backend import kernel_cache
from repro.ir.interpreter import Interpreter
from repro.parallel.config import ScanConfig

APP = "Snort"
MIN_SPEEDUP = 5.0


def _time(fn, *args, repeat=3):
    best = float("inf")
    result = None
    for _ in range(repeat):
        begin = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - begin)
    return best, result


def test_compiled_backend_speedup(ctx, benchmark):
    harness = ctx.harness
    workload = harness.workload(APP)
    data = workload.data
    mb = len(data) / 1e6

    simulate = harness.bitgen_engine(workload)
    compiled = harness.bitgen_engine(workload, backend="compiled")

    sim_seconds, sim_result = _time(simulate.match, data, repeat=1)

    cache = kernel_cache()
    cache.stats.reset()
    compiled.match(data)  # warm-up: compiles and caches the kernels
    first_lookups = cache.stats.lookups
    comp_seconds, comp_result = _time(compiled.match, data)
    assert comp_result.ends == sim_result.ends

    # A second engine over the same workload recompiles nothing: every
    # kernel lookup hits (the "repeated harness cell" case).
    from repro.core.engine import BitGenEngine

    recompiled = BitGenEngine.compile(
        workload.nodes,
        config=ScanConfig(geometry=harness.geometry,
                          cta_count=harness.cta_count(workload),
                          loop_fallback=True, backend="compiled"))
    recompiled.match(data[:2048])

    # Secondary reference: whole-stream big-integer interpretation of
    # the same group programs (no window schedule, no metrics).
    interpreter = Interpreter()
    interp_seconds, _ = _time(
        lambda: [interpreter.run(group.program, data)
                 for group in simulate.groups], repeat=1)

    speedup = sim_seconds / comp_seconds
    print()
    print(f"app={APP} input={len(data)} bytes "
          f"groups={len(simulate.groups)}")
    print(f"  simulate (Table 2 path): {sim_seconds:8.3f}s "
          f"{mb / sim_seconds:10.2f} MB/s")
    print(f"  interpreter (bigint):    {interp_seconds:8.3f}s "
          f"{mb / interp_seconds:10.2f} MB/s")
    print(f"  compiled (batched):      {comp_seconds:8.3f}s "
          f"{mb / comp_seconds:10.2f} MB/s")
    print(f"  compiled vs simulate: {speedup:.1f}x   "
          f"compiled vs interpreter: {interp_seconds / comp_seconds:.1f}x")
    print(f"  kernel cache: {cache.stats.hits}/{cache.stats.lookups} "
          f"hits, {len(cache)} kernels resident, "
          f"hit rate {cache.stats.hit_rate():.0%}")

    assert speedup >= MIN_SPEEDUP, \
        f"compiled backend only {speedup:.1f}x over the simulate path"
    assert cache.stats.hits >= first_lookups, \
        "a repeated cell must hit the kernel cache for every group"

    benchmark(compiled.match, data)

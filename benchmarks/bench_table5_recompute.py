"""Table 5: DTM recomputation overhead.

Per application: static overlap distance, average/maximum dynamic
overlap (from the runtime loop-counter tracking), recompute fraction,
and blocks per CTA (#Iter).  Shapes to check: control-intensive apps
(Brill, Protomata) dominate the dynamic columns; everything else stays
near zero; recompute stays small; no app exceeds the one-block limit.
"""

from repro.core.schemes import Scheme
from repro.perf.paper_data import TABLE5
from repro.perf.report import format_table

from conftest import APP_NAMES


def test_table5(ctx, benchmark):
    rows = []
    measured = {}
    for app in APP_NAMES:
        run = ctx.run_bitgen(app, Scheme.DTM)
        metrics = run.metrics
        ctas = len(run.cta_metrics)
        static = max(m.static_overlap_bits for m in run.cta_metrics)
        dyn_avg = metrics.avg_dynamic_overlap()
        dyn_max = metrics.dynamic_overlap_max
        recompute = metrics.recompute_fraction() * 100
        iters = metrics.blocks_processed / ctas
        measured[app] = (static, dyn_avg, dyn_max, recompute, iters)
        paper = TABLE5[app]
        rows.append([app, static, round(dyn_avg, 1), dyn_max,
                     round(recompute, 2), round(iters, 1),
                     f"{paper['static']}/{paper['dyn_avg']}/"
                     f"{paper['dyn_max']}/{paper['recompute_pct']}/"
                     f"{paper['iters']}"])
    print()
    print(format_table(
        ["App", "Static", "DynAvg", "DynMax", "Recompute%", "#Iter",
         "paper (st/avg/max/%/iter)"], rows,
        title="Table 5 — DTM overlap distances (bits) and recompute"))

    # Shape assertions.
    max_overlap = ctx.harness.geometry.max_overlap_bits
    for app, (static, dyn_avg, dyn_max, recompute, iters) in \
            measured.items():
        assert dyn_max <= max_overlap, \
            f"{app} stays within the one-block overlap limit"
        assert 50 <= iters <= 80, \
            f"{app} block count mirrors the paper's ~62 iterations"
    dynamic_rank = sorted(measured, key=lambda a: -measured[a][1])
    assert {"Brill", "Protomata"} & set(dynamic_rank[:3]), \
        "control-intensive apps dominate dynamic overlap (Table 5)"
    assert measured["ExactMatch"][1] < measured["Brill"][1]
    assert all(m[3] < 25 for m in measured.values()), \
        "recompute overhead stays a small fraction"

    workload = ctx.harness.workload("Snort")
    engine = ctx.harness.bitgen_engine(workload, Scheme.DTM)
    benchmark(engine.match, workload.data)

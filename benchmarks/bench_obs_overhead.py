"""Observability overhead benchmark: tracing off vs on, plus the
no-op guard CI enforces.

Not a paper experiment — this audits ``repro.obs`` itself.  Two
questions, answered per workload over the standard suite:

1. **What does the *disabled* path cost?**  Instrumentation sites call
   ``obs.span(...)``, which returns the shared ``NULL_SPAN`` when no
   tracer is installed.  A true pre-instrumentation baseline no longer
   exists, so the guard is computed: count the dynamic ``obs.span``
   calls a scan makes (by recording one trace), measure the per-call
   cost of the disabled fast path directly, and bound the overhead as
   ``calls * cost_per_call / scan_wall_time``.  CI fails if that
   fraction exceeds :data:`MAX_NOOP_OVERHEAD` on the quick suite.
2. **What does *enabled* tracing cost?**  Honest tracer-on vs
   tracer-off wall times for the same scans, recorded (not asserted —
   enabled tracing is allowed to cost what it costs).

Results land in ``BENCH_obs.json``.  Runs standalone
(``python benchmarks/bench_obs_overhead.py [--quick]``, the CI guard
mode) or under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import repro.obs as obs
from repro.core.engine import BitGenEngine
from repro.parallel.config import ScanConfig
from repro.workloads.apps import app_by_name

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

FULL_APPS = ("Snort", "ClamAV", "Bro217", "Dotstar", "Ranges1", "Yara")
QUICK_APPS = ("Snort", "Bro217")

#: CI guard: the disabled tracer may cost at most this fraction of a
#: quick-benchmark scan's wall time (the ISSUE 5 budget is 2%).
MAX_NOOP_OVERHEAD = 0.02


def null_span_cost() -> float:
    """Seconds per disabled ``obs.span`` call (full with-protocol),
    best of five batches so scheduler noise doesn't inflate it."""
    assert not obs.enabled()
    iterations = 100_000
    best = float("inf")
    for _ in range(5):
        begin = time.perf_counter()
        for _ in range(iterations):
            with obs.span("probe", category="bench", x=1):
                pass
        best = min(best, time.perf_counter() - begin)
    return best / iterations


def best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        begin = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - begin)
    return best


def measure_app(app_name: str, scale: float, input_bytes: int,
                repeat: int, per_call: float) -> dict:
    workload = app_by_name(app_name).build(
        scale=scale, seed=0, input_bytes=int(input_bytes / scale))
    engine = BitGenEngine._compile_config(
        workload.nodes, ScanConfig(backend="compiled", cta_count=4,
                                   loop_fallback=True))
    engine.match(workload.data)              # warm: codegen + cache

    off_seconds = best_of(lambda: engine.match(workload.data), repeat)

    tracer = obs.start_tracing()
    on_seconds = best_of(lambda: engine.match(workload.data), repeat)
    obs.stop_tracing()
    # Dynamic span-call count of ONE traced scan: the recorded spans
    # are exactly the obs.span() calls the disabled path also makes.
    span_calls = len(tracer.finished()) // repeat

    noop_fraction = span_calls * per_call / max(off_seconds, 1e-12)
    return {
        "app": app_name,
        "patterns": len(workload.patterns),
        "input_bytes": len(workload.data),
        "span_calls_per_scan": span_calls,
        "tracer_off_seconds": off_seconds,
        "tracer_on_seconds": on_seconds,
        "enabled_overhead": on_seconds / max(off_seconds, 1e-12) - 1.0,
        "noop_overhead_bound": noop_fraction,
        "throughput_off_mbps": len(workload.data) / max(off_seconds,
                                                        1e-12) / 1e6,
        "throughput_on_mbps": len(workload.data) / max(on_seconds,
                                                       1e-12) / 1e6,
    }


def run(quick: bool) -> dict:
    apps = QUICK_APPS if quick else FULL_APPS
    scale = 0.02
    input_bytes = 16384 if quick else 65536
    repeat = 3 if quick else 5

    per_call = null_span_cost()
    rows = [measure_app(app, scale, input_bytes, repeat, per_call)
            for app in apps]

    worst = max(rows, key=lambda r: r["noop_overhead_bound"])
    payload = {
        "benchmark": "repro.obs overhead: disabled-tracer guard and "
                     "tracer-on cost",
        "mode": "quick" if quick else "full",
        "apps": list(apps),
        "null_span_call_seconds": per_call,
        "max_noop_overhead_budget": MAX_NOOP_OVERHEAD,
        "worst_noop_overhead_bound": worst["noop_overhead_bound"],
        "rows": rows,
    }

    print(f"obs overhead benchmark ({payload['mode']})")
    print(f"  disabled obs.span(): {per_call * 1e9:.0f} ns/call")
    for row in rows:
        print(f"  {row['app']:<10} {row['span_calls_per_scan']:>4} "
              f"spans/scan  off {row['tracer_off_seconds']*1e3:7.2f}ms "
              f"on {row['tracer_on_seconds']*1e3:7.2f}ms "
              f"(+{row['enabled_overhead']:.1%})  "
              f"noop bound {row['noop_overhead_bound']:.3%}")
    print(f"  worst disabled-path bound: "
          f"{worst['noop_overhead_bound']:.3%} of scan wall time "
          f"(budget {MAX_NOOP_OVERHEAD:.0%})")

    assert worst["noop_overhead_bound"] < MAX_NOOP_OVERHEAD, \
        f"disabled tracer costs {worst['noop_overhead_bound']:.2%} " \
        f"of {worst['app']}'s scan (budget {MAX_NOOP_OVERHEAD:.0%})"

    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_obs_overhead_quick():
    run(quick=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small inputs / fewer apps (CI guard mode)")
    options = parser.parse_args(argv)
    run(quick=options.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 14: Zero Block Skipping interval-size sensitivity.

Sweeps the guard-insertion interval over {1, 2, 4, 8} and reports
throughput normalised to interval 1, plus the skip statistics behind
it.  Shapes to check: the optimum varies per application (the paper:
"optimal size varies by application"); interval 1 maximises skips but
pays the most guard/synchronisation overhead, so it is rarely best.
"""

from repro.core.schemes import Scheme
from repro.perf.model import geometric_mean
from repro.perf.report import format_table

from conftest import APP_NAMES

INTERVALS = (1, 2, 4, 8)


def test_fig14_interval(ctx, benchmark):
    throughput = {interval: {} for interval in INTERVALS}
    skips = {interval: {} for interval in INTERVALS}
    guards = {interval: {} for interval in INTERVALS}
    for app in APP_NAMES:
        for interval in INTERVALS:
            run = ctx.run_bitgen(app, Scheme.ZBS, interval_size=interval)
            throughput[interval][app] = run.mbps
            metrics = run.metrics
            total = metrics.thread_word_ops + metrics.skipped_word_ops
            skips[interval][app] = metrics.skipped_word_ops / max(total, 1)
            guards[interval][app] = metrics.guard_checks

    rows = []
    for app in APP_NAMES:
        best = max(INTERVALS, key=lambda i: throughput[i][app])
        rows.append([app]
                    + [round(throughput[i][app] / throughput[1][app], 2)
                       for i in INTERVALS]
                    + [best, f"{skips[1][app]:.0%}"])
    norm_row = ["Gmean"]
    for interval in INTERVALS:
        norm_row.append(round(geometric_mean(
            [throughput[interval][a] / throughput[1][a]
             for a in APP_NAMES]), 2))
    rows.append(norm_row + ["", ""])
    print()
    print(format_table(
        ["App", "I=1", "I=2", "I=4", "I=8", "best I", "skip@1"], rows,
        title="Figure 14 — ZBS throughput normalised to interval 1"))

    # Shape assertions.
    for app in APP_NAMES:
        # Interval 1 inserts roughly at least as many guards as
        # interval 8 (guards on long paths are capped per path and
        # deduplicated, so the relation holds only within a tolerance).
        assert guards[1][app] >= 0.85 * guards[8][app], \
            f"{app}: smaller intervals insert at least as many guards"
        # Every interval setting must actually skip work on every app
        # (the fractions are not strictly monotone in the interval:
        # denser guards also add reduction ops to the denominator).
        assert all(skips[i][app] > 0 for i in INTERVALS), \
            f"{app}: ZBS must skip some work at every interval"
    best_intervals = {max(INTERVALS, key=lambda i: throughput[i][app])
                      for app in APP_NAMES}
    assert len(best_intervals) > 1, \
        "the optimal interval varies by application (Figure 14)"

    workload = ctx.harness.workload("Dotstar")
    engine = ctx.harness.bitgen_engine(workload, Scheme.ZBS,
                                       interval_size=4)
    benchmark(engine.match, workload.data[:8192])

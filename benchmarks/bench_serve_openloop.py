"""Open-loop serving load: latency-vs-load and SLO-violation curves.

``bench_serve.py`` drives *closed-loop* clients (each waits for its
response before the next request) — that measures service latency, but
closed loops self-throttle: when the server slows down, the offered
load drops with it, hiding collapse.  This harness drives **open-loop
arrival-rate load** — requests arrive on a fixed schedule whether or
not earlier ones finished, the way real traffic does — and sweeps the
rate across the gateway's capacity, recording per-rate p50/p99, shed
counts, and the rolling SLO violation/burn numbers the telemetry layer
computes (:mod:`repro.serve.telemetry`).

Also on the line, because this is the CI scrape-overhead guard:

* A **live /metrics scraper** polls the gateway's
  :class:`~repro.serve.telemetry.MetricsServer` throughout one load
  trial; every scrape must return 200 with the serve series present.
* **Scrape overhead is bounded**: paired closed-loop trials (scrape
  vs no-scrape) must agree on throughput within
  ``max(1%, measured no-scrape noise floor)`` — rendering a registry
  snapshot may not tax the serving path.
* The **access log** written during the sweep
  (``results/serve_access_log.jsonl``) must parse as JSONL and carry
  the per-request fields (tenant, op, outcome, latency, queue delay).

Results merge into ``BENCH_serve.json`` under the ``"open_loop"`` key
(the closed-loop benchmark owns the others).  ``--quick`` shrinks the
sweep for CI.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.parallel.config import ScanConfig
from repro.serve import Gateway, MetricsServer, ServeConfig
from repro.serve.telemetry import scrape_metrics

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_serve.json"
ACCESS_LOG = ROOT / "results" / "serve_access_log.jsonl"

PATTERNS = ["GET /[a-z]+", "cat|dog", "[0-9][0-9]", "a(bc)*d"]
BASE = (b"abcbcd colour cat 42 xyyz virus7 GET /index "
        b"foo bar qux color abcd and 99 dogs " * 24)
SCAN_BYTES = 1536

#: offered arrival rates (requests/s) swept per trial
RATES = (50, 150, 400, 1000)
TRIAL_SECONDS = 2.0
QUICK_RATES = (50, 400)
QUICK_TRIAL_SECONDS = 0.6

#: the latency SLO the violation/burn columns score against
SLO_TARGET_S = 0.05

#: paired-trial scrape-overhead budget (fraction of throughput)
OVERHEAD_BUDGET = 0.01

#: scrape cadence during the overhead trials — 1 Hz is already 15x
#: more aggressive than Prometheus's default 15s interval; the guard
#: bounds the cost of *realistic* scraping, not of a scrape DoS
SCRAPE_INTERVAL_S = 1.0

#: closed-loop shape of the overhead trials (long enough that several
#: scrapes land inside every scraped probe)
OVERHEAD_CLIENTS = 4
OVERHEAD_REQUESTS = 200
OVERHEAD_PAIRS = 3


def percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def make_gateway() -> Gateway:
    ACCESS_LOG.parent.mkdir(parents=True, exist_ok=True)
    return Gateway(ServeConfig(
        max_engines=16, queue_depth=256,
        slo_target_s=SLO_TARGET_S,
        access_log_path=str(ACCESS_LOG),
        scan=ScanConfig(loop_fallback=True)))


# -- open-loop sweep ---------------------------------------------------------


async def open_loop_trial(gateway: Gateway, rate: float,
                          seconds: float) -> Dict:
    """Fire ``rate * seconds`` scans on a fixed arrival schedule;
    latency is measured from *scheduled arrival*, so queueing (and
    any server slowdown) shows up instead of throttling the load."""
    tenant = f"open-{int(rate)}"
    data = BASE[:SCAN_BYTES]
    total = max(1, int(rate * seconds))
    await gateway.compile(tenant, PATTERNS)  # warm outside the trial
    latencies: List[float] = []
    shed = 0
    errors = 0

    async def one(arrival: float) -> None:
        nonlocal shed, errors
        try:
            await gateway.scan(tenant, PATTERNS, data)
        except Exception as exc:
            if getattr(exc, "code", None) == "overloaded":
                shed += 1
            else:
                errors += 1
            return
        latencies.append(time.perf_counter() - arrival)

    begin = time.perf_counter()
    tasks = []
    for index in range(total):
        scheduled = begin + index / rate
        delay = scheduled - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(scheduled)))
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - begin

    slo = gateway.telemetry.slo.snapshot().get(tenant, {})
    return {
        "offered_rps": rate,
        "requests": total,
        "completed": len(latencies),
        "shed": shed,
        "errors": errors,
        "achieved_rps": len(latencies) / elapsed,
        "p50_s": percentile(latencies, 0.50),
        "p99_s": percentile(latencies, 0.99),
        "slo_violation_ratio": slo.get("violation_ratio", 0.0),
        "slo_burn": slo.get("burn", 0.0),
        "slo_violations": slo.get("violations", 0),
    }


# -- live scraping + overhead ------------------------------------------------


async def scraping_task(server: MetricsServer, stop: asyncio.Event,
                        results: Dict) -> None:
    """Poll /metrics until told to stop; record statuses and check
    the serve series are present in every body."""
    while not stop.is_set():
        status, body = await scrape_metrics(server.host, server.port)
        results["scrapes"] = results.get("scrapes", 0) + 1
        results.setdefault("statuses", set()).add(status)
        if "repro_serve_tenant_requests_total" not in body \
                or "repro_serve_slo_burn" not in body:
            results["missing_series"] = \
                results.get("missing_series", 0) + 1
        try:
            await asyncio.wait_for(stop.wait(), SCRAPE_INTERVAL_S)
        except asyncio.TimeoutError:
            pass


async def closed_loop_throughput(gateway: Gateway, tenant: str) -> float:
    """Requests/s of a fixed closed-loop burst (the paired-trial
    probe the overhead guard compares)."""
    data = BASE[:SCAN_BYTES]

    async def client(index: int) -> None:
        for _ in range(OVERHEAD_REQUESTS):
            await gateway.scan(f"{tenant}-{index}", PATTERNS, data)

    for index in range(OVERHEAD_CLIENTS):
        await gateway.compile(f"{tenant}-{index}", PATTERNS)
    begin = time.perf_counter()
    await asyncio.gather(*(client(index)
                           for index in range(OVERHEAD_CLIENTS)))
    return (OVERHEAD_CLIENTS * OVERHEAD_REQUESTS
            / (time.perf_counter() - begin))


async def measure_scrape_overhead(gateway: Gateway,
                                  server: MetricsServer) -> Dict:
    """Alternating paired trials: ``OVERHEAD_PAIRS`` no-scrape /
    scraped probe pairs, compared **best-of vs best-of** so a one-off
    scheduler stall in either column cannot fake (or mask) overhead.
    The no-scrape spread is the machine's measured noise floor; the
    scraped best must sit within ``max(OVERHEAD_BUDGET, noise)`` of
    the no-scrape best."""
    await asyncio.sleep(0.2)  # let the open-loop backlog settle
    baselines: List[float] = []
    scraped_runs: List[float] = []
    scrape_stats: Dict = {}
    for pair in range(OVERHEAD_PAIRS):
        baselines.append(await closed_loop_throughput(
            gateway, f"ovh-base-{pair}"))
        stop = asyncio.Event()
        scraper = asyncio.ensure_future(
            scraping_task(server, stop, scrape_stats))
        scraped_runs.append(await closed_loop_throughput(
            gateway, f"ovh-scrape-{pair}"))
        stop.set()
        await scraper

    best_base = max(baselines)
    noise = (best_base - min(baselines)) / best_base
    overhead = max(0.0, (best_base - max(scraped_runs)) / best_base)
    return {
        "baseline_rps": best_base,
        "baseline_runs": baselines,
        "scraped_rps": max(scraped_runs),
        "scraped_runs": scraped_runs,
        "noise_floor": noise,
        "overhead": overhead,
        "budget": OVERHEAD_BUDGET,
        "allowed": max(OVERHEAD_BUDGET, noise),
        "scrapes": scrape_stats.get("scrapes", 0),
        "scrape_statuses": sorted(scrape_stats.get("statuses", ())),
        "scrapes_missing_series": scrape_stats.get("missing_series", 0),
    }


# -- access-log validation ---------------------------------------------------


def validate_access_log(path: Path) -> Dict:
    records = [json.loads(line)
               for line in path.read_text().splitlines()]
    required = ("ts", "op", "tenant", "outcome", "latency_s",
                "queue_delay_s")
    malformed = sum(1 for r in records
                    if any(field not in r for field in required))
    return {
        "path": str(path.relative_to(ROOT)),
        "records": len(records),
        "malformed": malformed,
        "outcomes": sorted({r.get("outcome") for r in records}),
        "ops": sorted({r.get("op") for r in records}),
    }


# -- driver ------------------------------------------------------------------


async def run_async(quick: bool) -> Dict:
    rates = QUICK_RATES if quick else RATES
    seconds = QUICK_TRIAL_SECONDS if quick else TRIAL_SECONDS
    if ACCESS_LOG.exists():
        ACCESS_LOG.unlink()
    gateway = make_gateway()
    server = await MetricsServer(
        port=0, refresh=gateway.telemetry.refresh).start()

    rows = []
    for rate in rates:
        rows.append(await open_loop_trial(gateway, rate, seconds))
    overhead = await measure_scrape_overhead(gateway, server)

    status, body = await scrape_metrics(server.host, server.port)
    final_scrape_ok = (status == 200
                       and "repro_serve_slo_p99_seconds" in body)
    await server.stop()
    await gateway.close()  # flushes the access-log ring
    return {
        "benchmark": "open-loop arrival-rate serving load "
                     "(latency vs load, SLO violations, live scrape)",
        "scan_bytes": SCAN_BYTES,
        "slo_target_s": SLO_TARGET_S,
        "trial_seconds": seconds,
        "levels": rows,
        "scrape_overhead": overhead,
        "final_scrape_ok": final_scrape_ok,
        "access_log": validate_access_log(ACCESS_LOG),
    }


def merge_into_bench(payload: Dict) -> None:
    """Own only the ``open_loop`` key of BENCH_serve.json; the
    closed-loop benchmark owns the rest."""
    existing: Dict = {}
    if OUTPUT.exists():
        try:
            existing = json.loads(OUTPUT.read_text())
        except (ValueError, OSError):
            existing = {}
    existing["open_loop"] = payload
    OUTPUT.write_text(json.dumps(existing, indent=2) + "\n")


def run_benchmark(quick: bool = False) -> Dict:
    payload = asyncio.run(run_async(quick))
    merge_into_bench(payload)
    print()
    for row in payload["levels"]:
        print(f"  offered={row['offered_rps']:6.0f} rps: "
              f"achieved={row['achieved_rps']:8.1f} rps  "
              f"p50={row['p50_s'] * 1e3:7.2f}ms  "
              f"p99={row['p99_s'] * 1e3:7.2f}ms  "
              f"shed={row['shed']:4d}  "
              f"burn={row['slo_burn']:6.2f}")
    overhead = payload["scrape_overhead"]
    print(f"  scrape overhead: {overhead['overhead'] * 100:.2f}% over "
          f"{overhead['scrapes']} scrapes "
          f"(allowed {overhead['allowed'] * 100:.2f}%)")
    log = payload["access_log"]
    print(f"  access log: {log['records']} records, "
          f"{log['malformed']} malformed -> {log['path']}")
    return payload


def check_assertions(payload: Dict) -> None:
    assert len(payload["levels"]) >= 2
    for row in payload["levels"]:
        assert row["completed"] + row["shed"] + row["errors"] \
            == row["requests"]
        assert row["errors"] == 0, f"unexpected errors: {row}"
    overhead = payload["scrape_overhead"]
    assert overhead["scrapes"] > 0, "scraper never ran during load"
    assert overhead["scrape_statuses"] == [200], \
        f"non-200 scrapes: {overhead['scrape_statuses']}"
    assert overhead["scrapes_missing_series"] == 0
    assert overhead["overhead"] <= overhead["allowed"], \
        (f"/metrics scraping cost {overhead['overhead'] * 100:.2f}% "
         f"throughput, over the {overhead['allowed'] * 100:.2f}% "
         f"allowance (1% budget or measured noise floor)")
    assert payload["final_scrape_ok"]
    log = payload["access_log"]
    assert log["records"] > 0 and log["malformed"] == 0
    assert "ok" in log["outcomes"]
    total = sum(row["requests"] for row in payload["levels"])
    # every swept request (plus warmup/overhead traffic) logged,
    # minus anything the bounded ring displaced under burst
    assert log["records"] >= total * 0.5


def test_serve_open_loop_quick():
    check_assertions(run_benchmark(quick=True))


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    check_assertions(run_benchmark(quick=quick))
    print(f"wrote {OUTPUT} (open_loop)")

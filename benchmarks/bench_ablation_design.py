"""Ablations for design choices DESIGN.md calls out (not in the paper's
evaluation, but justifying decisions the paper makes in passing):

* **Grouping policy** (Section 7: "regexes are partitioned into groups
  with similar total character length ... to balance GPU workload"):
  balanced LPT vs naive round-robin — measures the wave-straggler cost
  of imbalance.
* **Program cleanup** (Parabix applies equivalent normalisation before
  codegen): copy-propagation + DCE on vs off — measures how much dead
  lowering plumbing would cost the kernel.
* **Block geometry** (Section 3.1's T*W blocks): larger blocks amortise
  barriers but recompute more per overlap bit — measures both sides of
  that tradeoff.
"""

import statistics

from repro.core import BitGenEngine, Scheme, imbalance
from repro.gpu.machine import CTAGeometry
from repro.parallel.config import ScanConfig
from repro.perf import model
from repro.perf.report import format_table

from conftest import APP_NAMES


def test_ablation_grouping(ctx, benchmark):
    """Balanced grouping beats round-robin via wave time."""
    rows = []
    balanced_imbalance = []
    naive_imbalance = []
    for app in ("ClamAV", "Snort", "Brill"):  # high length variance
        workload = ctx.harness.workload(app)
        extrapolation = ctx.harness.extrapolation(workload)
        results = {}
        for strategy in ("balanced", "round_robin"):
            engine = BitGenEngine.compile(
                workload.nodes,
                config=ScanConfig(
                    scheme=Scheme.ZBS, geometry=ctx.harness.geometry,
                    cta_count=ctx.harness.cta_count(workload),
                    loop_fallback=True, grouping=strategy))
            result = engine.match(workload.data)
            throughput = model.model_bitgen(
                result.cta_metrics, ctx.harness.gpu,
                len(workload.data), extrapolation)
            results[strategy] = (throughput.mbps,
                                 imbalance([g.group
                                            for g in engine.groups]))
        ratio = results["balanced"][0] / results["round_robin"][0]
        balanced_imbalance.append(results["balanced"][1])
        naive_imbalance.append(results["round_robin"][1])
        rows.append([app, round(results["balanced"][0], 1),
                     round(results["round_robin"][0], 1),
                     f"{ratio:.2f}x",
                     round(results["balanced"][1], 2),
                     round(results["round_robin"][1], 2)])
    print()
    print(format_table(
        ["App", "balanced MB/s", "round-robin MB/s", "gain",
         "imbal (bal)", "imbal (rr)"], rows,
        title="Ablation — grouping policy (Section 7)"))
    # The policy's direct target is CTA load balance; at benchmark scale
    # throughput is confounded by CSE differences inside groups, so the
    # assertion checks the balance itself.
    assert all(b <= n for b, n in zip(balanced_imbalance,
                                      naive_imbalance)), \
        "LPT grouping never balances worse than round-robin"
    assert max(balanced_imbalance) < 1.2, \
        "LPT keeps CTA loads within 20% of the mean"
    benchmark(lambda: imbalance([g.group for g in BitGenEngine.compile(
        ctx.harness.workload("Snort").nodes,
        config=ScanConfig(cta_count=8)).groups]))


def test_ablation_group_compilation(ctx, benchmark):
    """Grouped compilation (one program per CTA, Section 3.1) vs one
    program per regex: sharing character-class streams and Shannon
    subexpressions across a group's regexes shrinks the kernel.  This
    is the compile-side payoff of assigning regex *groups* to CTAs."""
    from repro.ir.lower import lower_group, lower_regex

    rows = []
    savings = []
    for app in ("Brill", "Protomata", "Yara"):
        workload = ctx.harness.workload(app)
        nodes = workload.nodes[:8]
        grouped = lower_group(nodes).instruction_count()
        separate = sum(lower_regex(node).instruction_count()
                       for node in nodes)
        savings.append(1 - grouped / separate)
        rows.append([app, separate, grouped,
                     f"{100 * (1 - grouped / separate):.1f}%"])
    print()
    print(format_table(["App", "instrs (per-regex)", "instrs (grouped)",
                        "shared"], rows,
                       title="Ablation — grouped compilation shares "
                             "character classes"))
    assert all(s > 0.05 for s in savings), \
        "grouping shares at least 5% of the instructions on every app"
    workload = ctx.harness.workload("TCP")
    benchmark(lambda: BitGenEngine.compile(
        workload.nodes[:3], config=ScanConfig(optimize=True)))


GEOMETRIES = (CTAGeometry(threads=16, word_bits=32),    # 512-bit blocks
              CTAGeometry(threads=32, word_bits=32),    # 1024 (default)
              CTAGeometry(threads=128, word_bits=32))   # 4096


def test_ablation_block_size(ctx, benchmark):
    """Bigger blocks: fewer barrier executions, lower recompute share
    relative to the block, but fewer/longer waves."""
    rows = []
    barrier_counts = []
    recompute = []
    for geometry in GEOMETRIES:
        workload = ctx.harness.workload("Snort")
        engine = BitGenEngine.compile(
            workload.nodes,
            config=ScanConfig(
                scheme=Scheme.ZBS, geometry=geometry,
                cta_count=ctx.harness.cta_count(workload),
                loop_fallback=True))
        result = engine.match(workload.data)
        metrics = result.metrics
        barrier_counts.append(metrics.barriers)
        recompute.append(metrics.recompute_fraction())
        rows.append([geometry.block_bits, metrics.barriers,
                     f"{metrics.recompute_fraction():.2%}",
                     metrics.blocks_processed])
    print()
    print(format_table(["block bits", "barriers", "recompute",
                        "blocks"], rows,
                       title="Ablation — block geometry (Snort)"))
    assert barrier_counts[0] > barrier_counts[-1], \
        "larger blocks execute fewer barriers"
    assert recompute[0] >= recompute[-1], \
        "overlap is a smaller share of larger blocks"

    benchmark(lambda: ctx.harness.workload("Snort"))

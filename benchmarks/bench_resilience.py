"""Resilience overhead benchmark: the clean-path cost guard and
per-fault-kind recovery latency.

Not a paper experiment — this audits :mod:`repro.resilience` itself.
Two questions:

1. **What does resilience cost when nothing faults?**  The hooks on a
   clean dispatch are ``chaos.maybe_inject``/``chaos.armed`` (two env
   reads when disarmed), one breaker ``allow()``, one breaker
   ``record_success()``, and a ``Deadline`` that is ``None``-checked
   per wait.  As with the obs no-op guard, the bound is computed:
   count the hook sites a dispatch executes, measure each disabled
   hook's per-call cost directly, and bound the overhead as
   ``hooks * cost / dispatch_wall_time``.  CI fails if that fraction
   exceeds :data:`MAX_CLEAN_OVERHEAD` (the ISSUE 7 budget is 2%).
2. **What does recovery cost?**  Wall-clock latency of a dispatch
   that eats one transient injected fault, per fault kind, at
   ``max_retries`` 0 (inline degrade), 1, and 2 — recorded, not
   asserted; recovery is allowed to cost what it costs.

Results land in ``BENCH_resilience.json``.  Runs standalone
(``python benchmarks/bench_resilience.py [--quick]``, the CI guard
mode) or under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.engine import BitGenEngine
from repro.gpu.machine import CTAGeometry
from repro.parallel import pool as pool_mod
from repro.parallel.config import ScanConfig
from repro.parallel.scan import ParallelScanner, plan_stream_shards
from repro.resilience import chaos
from repro.resilience.chaos import ChaosPlan, ChaosRule

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

TINY = CTAGeometry(threads=4, word_bits=8)
PATTERNS = ["a(bc)*d", "cat|dog", "[0-9][0-9]", "virus[0-9]"]
DATA = b"abcbcd cat 42 virus7 dog abcd " * 512
STREAMS = [DATA[: 1 << 12], DATA[: 1 << 13], DATA[: 1 << 12],
           DATA, DATA[: 1 << 13]]

#: CI guard: disarmed resilience hooks may cost at most this fraction
#: of a clean parallel dispatch's wall time.
MAX_CLEAN_OVERHEAD = 0.02


def build_engine():
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY, loop_fallback=True,
                                    backend="compiled"))


def thread_config(**extra):
    defaults = dict(geometry=TINY, loop_fallback=True,
                    backend="compiled", workers=2, executor="thread",
                    min_parallel_bytes=0)
    defaults.update(extra)
    return ScanConfig(**defaults)


def best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        begin = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - begin)
    return best


def per_call_costs() -> dict:
    """Per-call cost of each disarmed hook, best of five batches."""
    assert not chaos.armed()
    iterations = 50_000
    costs = {}

    def measure(name, fn):
        best = float("inf")
        for _ in range(5):
            begin = time.perf_counter()
            for _ in range(iterations):
                fn()
            best = min(best, time.perf_counter() - begin)
        costs[name] = best / iterations

    breaker = pool_mod.breaker()
    measure("chaos_maybe_inject", lambda: chaos.maybe_inject("bench"))
    measure("breaker_allow", breaker.allow)
    measure("breaker_record_success", breaker.record_success)
    return costs


def clean_path_guard(engine, repeat: int) -> dict:
    """The computed clean-path bound over a warm parallel dispatch."""
    config = thread_config()
    scanner = ParallelScanner(engine, config)
    scanner.match_many(STREAMS)              # warm pool + kernels
    wall = best_of(lambda: scanner.match_many(STREAMS), repeat)
    assert scanner.faults == []

    shards = len(plan_stream_shards(STREAMS, config.workers,
                                    preserve_batches=True))
    costs = per_call_costs()
    # Hook sites on one clean dispatch: maybe_inject + armed() in
    # _acquire (charged as two maybe_inject-class env reads), one
    # breaker allow(), one record_success(), and one worker-side
    # maybe_inject per shard.
    hook_seconds = ((2 + shards) * costs["chaos_maybe_inject"]
                    + costs["breaker_allow"]
                    + costs["breaker_record_success"])
    overhead = hook_seconds / max(wall, 1e-12)
    return {
        "dispatch_wall_seconds": wall,
        "shards": shards,
        "per_call_seconds": costs,
        "hook_seconds_per_dispatch": hook_seconds,
        "clean_overhead_bound": overhead,
    }


def recovery_latency(engine, kind: str, max_retries: int,
                     clean_wall: float) -> dict:
    """Wall time of one dispatch that eats a single transient fault."""
    os.environ[chaos.SLEEP_ENV] = "0.5"
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind=kind, max_count=1),)))
    try:
        config = thread_config(
            on_fault="retry", max_retries=max_retries,
            retry_backoff=0.01,
            worker_timeout=0.3 if kind == "timeout" else None)
        scanner = ParallelScanner(engine, config)
        begin = time.perf_counter()
        scanner.match_many(STREAMS)
        wall = time.perf_counter() - begin
        fallbacks = sorted({f.fallback for f in scanner.faults})
        retries = max((f.retries for f in scanner.faults), default=0)
    finally:
        chaos.reset()
        pool_mod.breaker().reset()
    return {
        "kind": kind,
        "max_retries": max_retries,
        "wall_seconds": wall,
        "recovery_seconds": max(wall - clean_wall, 0.0),
        "faults": len(scanner.faults),
        "fallbacks": fallbacks,
        "retries_used": retries,
    }


def run(quick: bool) -> dict:
    repeat = 3 if quick else 5
    engine = build_engine()
    chaos.reset()
    pool_mod.breaker().reset()

    guard = clean_path_guard(engine, repeat)
    clean_wall = guard["dispatch_wall_seconds"]

    recovery = []
    for kind in ("exception", "timeout"):
        for max_retries in (0, 1, 2):
            recovery.append(
                recovery_latency(engine, kind, max_retries,
                                 clean_wall))

    payload = {
        "benchmark": "repro.resilience overhead: clean-path guard and "
                     "recovery latency per fault kind",
        "mode": "quick" if quick else "full",
        "max_clean_overhead_budget": MAX_CLEAN_OVERHEAD,
        "clean_path": guard,
        "recovery": recovery,
    }

    print(f"resilience overhead benchmark ({payload['mode']})")
    costs = guard["per_call_seconds"]
    print(f"  disarmed chaos.maybe_inject(): "
          f"{costs['chaos_maybe_inject'] * 1e9:.0f} ns/call")
    print(f"  breaker allow()+record_success(): "
          f"{(costs['breaker_allow'] + costs['breaker_record_success']) * 1e9:.0f} ns")
    print(f"  clean dispatch: {clean_wall * 1e3:.2f} ms over "
          f"{guard['shards']} shards -> clean-path bound "
          f"{guard['clean_overhead_bound']:.4%} "
          f"(budget {MAX_CLEAN_OVERHEAD:.0%})")
    for row in recovery:
        print(f"  recover {row['kind']:<10} max_retries="
              f"{row['max_retries']}  wall {row['wall_seconds']*1e3:7.2f}ms "
              f"(+{row['recovery_seconds']*1e3:6.2f}ms) "
              f"fallbacks={','.join(row['fallbacks']) or '-'}")

    assert guard["clean_overhead_bound"] < MAX_CLEAN_OVERHEAD, \
        f"disarmed resilience hooks cost " \
        f"{guard['clean_overhead_bound']:.2%} of a clean dispatch " \
        f"(budget {MAX_CLEAN_OVERHEAD:.0%})"

    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_resilience_overhead_quick():
    run(quick=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats (CI guard mode)")
    options = parser.parse_args(argv)
    run(quick=options.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 15: performance portability across GPUs.

Prices the same counted kernel work on the RTX 3090, H100 NVL, and
L40S, for BitGen and ngAP, normalised to the 3090.  Shapes to check
(paper): BitGen is compute-bound, so it tracks integer throughput
(1 : 1.9 : 2.6 => measured 1.6x / 2.0x) and gains more on the L40S
than the H100 despite H100's bandwidth; ngAP barely improves on H100
(1.0x) and modestly on L40S (1.4x).
"""

from repro.gpu.config import ALL_GPUS, H100_NVL, L40S, RTX_3090
from repro.perf.model import geometric_mean
from repro.perf.paper_data import FIGURE15
from repro.perf.report import format_table

from conftest import APP_NAMES


def test_fig15_portability(ctx, benchmark):
    bitgen = {gpu.name: {} for gpu in ALL_GPUS}
    ngap = {gpu.name: {} for gpu in ALL_GPUS}
    for app in APP_NAMES:
        for gpu in ALL_GPUS:
            bitgen[gpu.name][app] = ctx.run_bitgen(app, gpu=gpu).mbps
            ngap[gpu.name][app] = ctx.harness.run_baseline(
                app, "ngAP", gpu=gpu).mbps

    rows = []
    norms = {}
    for engine_name, table in (("BitGen", bitgen), ("ngAP", ngap)):
        for gpu in ALL_GPUS:
            norm = geometric_mean([table[gpu.name][a]
                                   / table[RTX_3090.name][a]
                                   for a in APP_NAMES])
            norms[(engine_name, gpu.name)] = norm
            paper = FIGURE15[engine_name][gpu.name]
            rows.append([engine_name, gpu.name, round(norm, 2), paper])
    print()
    print(format_table(["Engine", "GPU", "vs 3090", "paper"], rows,
                       title="Figure 15 — throughput normalised to the "
                             "RTX 3090"))

    # Shape assertions.
    assert norms[("BitGen", H100_NVL.name)] > 1.2, \
        "BitGen gains on H100 (paper 1.6x)"
    assert norms[("BitGen", L40S.name)] > norms[("BitGen", H100_NVL.name)], \
        "BitGen gains MORE on L40S than H100: compute-bound, follows " \
        "integer throughput, not memory bandwidth (Section 8.3)"
    assert norms[("ngAP", H100_NVL.name)] < \
        norms[("BitGen", H100_NVL.name)], \
        "ngAP is less compute-portable than BitGen"

    benchmark(lambda: ctx.run_bitgen("Bro217", gpu=L40S))

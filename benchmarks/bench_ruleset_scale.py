"""Rule-set scale benchmark: compile time, incremental recompilation,
and prefiltered scan throughput at 100 / 1k / 10k patterns.

Not a paper experiment — this audits the reproduction's rule-set-scale
machinery (ISSUE 9):

* **Cold compile** at each set size (``grouping="fingerprint"``, the
  scale-oriented strategy).
* **Incremental recompile** of a one-pattern diff against the same set
  (:mod:`repro.core.incremental`); must be >= 10x faster than cold at
  1k patterns, since only the touched groups recompile.
* **Scan throughput** over literal-sparse input with the prefilter
  gate off vs on (identical match sets, asserted); the gated scan must
  be >= 2x faster at 1k patterns, because every gated bucket's
  required literals are absent and the kernels never dispatch.

Results land in ``BENCH_ruleset_scale.json``.  Runs standalone
(``python benchmarks/bench_ruleset_scale.py [--quick]``, the CI smoke
mode; ``--patterns-file FILE`` benchmarks a real rule set instead of
the synthetic one) or under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import load_patterns_file
from repro.core.engine import BitGenEngine
from repro.core.incremental import update_engine
from repro.parallel.config import ScanConfig

OUTPUT = Path(__file__).resolve().parent.parent \
    / "BENCH_ruleset_scale.json"

FULL_SIZES = (100, 1000, 10000)
QUICK_SIZES = (100, 1000)

#: acceptance floors (ISSUE 9), checked at the 1k-pattern cell
MIN_PREFILTER_SPEEDUP = 2.0
MIN_INCREMENTAL_SPEEDUP = 10.0

#: literal-sparse scan input: plain prose, none of the rule literals
SPARSE_INPUT = (b"the quick brown fox jumps over the lazy dog while "
                b"0123456789 unrelated bytes stream past the matcher "
                ) * 160                                    # ~16 KiB


def synthetic_rules(count: int) -> list:
    """A rule set shaped like real signature sets: mostly patterns
    anchored on a distinctive literal, a few factor-free ones that
    keep their buckets always-on."""
    rules = []
    for index in range(count):
        if index % 50 == 49:
            rules.append(f"[a-y][a-y0-9]*z{index % 7}q")
        else:
            rules.append(f"sig{index:05d}[0-9]+x")
    return rules


def best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        begin = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - begin)
    return best


def measure_set(rules: list, repeat: int) -> dict:
    config = ScanConfig(backend="compiled", grouping="fingerprint",
                        loop_fallback=True)
    begin = time.perf_counter()
    engine = BitGenEngine.compile(rules, config=config)
    cold_seconds = time.perf_counter() - begin

    # -- incremental: one-pattern diff against the compiled set -------
    diff = rules + ["added[0-9]+q"]
    begin = time.perf_counter()
    updated, update = update_engine(engine, diff)
    update_seconds = time.perf_counter() - begin

    # -- scan: literal-sparse input, gate off vs on -------------------
    gated = config.replace(prefilter=True)
    engine.match(SPARSE_INPUT)                   # warm kernel caches
    plain_seconds = best_of(
        lambda: engine.match(SPARSE_INPUT), repeat)
    prefiltered_seconds = best_of(
        lambda: engine.match(SPARSE_INPUT, config=gated), repeat)
    plain = engine.match(SPARSE_INPUT)
    prefiltered = engine.match(SPARSE_INPUT, config=gated)
    assert prefiltered.ends == plain.ends, \
        f"prefilter changed matches at {len(rules)} patterns"
    report = engine.last_prefilter

    row = {
        "patterns": len(rules),
        "groups": len(engine.groups),
        "compile_seconds_cold": cold_seconds,
        "incremental": {
            "seconds": update_seconds,
            "reused": update.reused,
            "recompiled": update.recompiled,
            "speedup_vs_cold": cold_seconds / max(update_seconds, 1e-9),
        },
        "scan": {
            "input_bytes": len(SPARSE_INPUT),
            "unfiltered_seconds": plain_seconds,
            "prefiltered_seconds": prefiltered_seconds,
            "speedup": plain_seconds / max(prefiltered_seconds, 1e-9),
            "unfiltered_mbps": len(SPARSE_INPUT) / plain_seconds / 1e6,
            "prefiltered_mbps": len(SPARSE_INPUT)
            / prefiltered_seconds / 1e6,
            "prefilter_report": report.to_dict(),
        },
    }
    del updated
    return row


def run(quick: bool, patterns_file: str = None) -> dict:
    repeat = 3 if quick else 5
    if patterns_file:
        rule_sets = [load_patterns_file(patterns_file)]
    else:
        sizes = QUICK_SIZES if quick else FULL_SIZES
        rule_sets = [synthetic_rules(size) for size in sizes]
    rows = [measure_set(rules, repeat) for rules in rule_sets]

    payload = {
        "benchmark": "rule-set scale: cold vs incremental compile, "
                     "prefiltered vs unfiltered scan",
        "mode": "quick" if quick else "full",
        "patterns_file": patterns_file,
        "rows": rows,
    }

    print(f"rule-set scale benchmark ({payload['mode']})")
    for row in rows:
        inc, scan = row["incremental"], row["scan"]
        print(f"  {row['patterns']:>6} patterns  "
              f"cold {row['compile_seconds_cold']:6.2f}s  "
              f"update {inc['seconds']*1e3:8.1f}ms "
              f"({inc['speedup_vs_cold']:6.1f}x, "
              f"{inc['reused']}/{row['groups']} reused)  "
              f"scan {scan['unfiltered_mbps']:7.2f} -> "
              f"{scan['prefiltered_mbps']:8.2f} MB/s "
              f"({scan['speedup']:5.1f}x)")

    if not patterns_file:
        anchor = next(r for r in rows if r["patterns"] == 1000)
        assert anchor["scan"]["speedup"] >= MIN_PREFILTER_SPEEDUP, \
            (f"prefiltered scan only {anchor['scan']['speedup']:.2f}x "
             f"at 1k patterns (floor {MIN_PREFILTER_SPEEDUP}x)")
        assert anchor["incremental"]["speedup_vs_cold"] \
            >= MIN_INCREMENTAL_SPEEDUP, \
            (f"incremental recompile only "
             f"{anchor['incremental']['speedup_vs_cold']:.2f}x "
             f"at 1k patterns (floor {MIN_INCREMENTAL_SPEEDUP}x)")

    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_ruleset_scale_quick():
    run(quick=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="100/1k sizes only (CI smoke mode)")
    parser.add_argument("--patterns-file", default=None, metavar="FILE",
                        help="benchmark this rule set instead of the "
                             "synthetic ones (one pattern per line, "
                             "'#' comments)")
    options = parser.parse_args(argv)
    run(quick=options.quick, patterns_file=options.patterns_file)
    return 0


if __name__ == "__main__":
    sys.exit(main())

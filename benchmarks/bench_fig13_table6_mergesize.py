"""Figure 13 + Table 6: Shift Rebalancing merge-size sensitivity.

Sweeps the barrier merge size over {1, 4, 16, 32} and reports
normalised throughput (Figure 13) plus the Table 6 profile: SHIFT sync
sites, shared-memory footprint of the largest group, barrier-stall
share of modelled time, and shared-memory traffic.  Shapes to check:
throughput rises with merge size; sync sites and stall share fall;
shared-memory footprint grows.
"""

from repro.core.schemes import Scheme
from repro.perf.model import geometric_mean
from repro.perf.paper_data import TABLE6
from repro.perf.report import format_table

from conftest import APP_NAMES

MERGE_SIZES = (1, 4, 16, 32)


def test_fig13_table6(ctx, benchmark):
    throughput = {size: {} for size in MERGE_SIZES}
    sync_sites = {size: [] for size in MERGE_SIZES}
    smem_kb = {size: [] for size in MERGE_SIZES}
    stall_pct = {size: [] for size in MERGE_SIZES}
    smem_mb = {size: [] for size in MERGE_SIZES}

    gpu = ctx.harness.gpu
    ops_rate_sm = gpu.int_ops_per_second() / gpu.sm_count
    for app in APP_NAMES:
        for size in MERGE_SIZES:
            run = ctx.run_bitgen(app, Scheme.SR, merge_size=size)
            throughput[size][app] = run.mbps
            workload = ctx.harness.workload(app)
            in_f = ctx.harness.extrapolation(workload).input_factor
            engine = ctx.harness.bitgen_engine(workload, Scheme.SR,
                                               merge_size=size)
            for group in engine.groups:
                sync_sites[size].append(group.barrier_plan.sync_points())
                smem_kb[size].append(group.barrier_plan.smem_bytes_needed(
                    ctx.harness.geometry.block_bytes) / 1024)
            for metrics in run.cta_metrics:
                stall = metrics.barriers * gpu.barrier_latency_ns * 1e-9
                compute = metrics.thread_word_ops * in_f / ops_rate_sm
                stall_pct[size].append(100 * stall / (stall + compute))
                smem_mb[size].append(metrics.smem_total_bytes() * in_f
                                     / 1e6)

    rows = []
    for size in MERGE_SIZES:
        norm = geometric_mean([throughput[size][a]
                               / throughput[1][a] for a in APP_NAMES])
        paper = TABLE6[size]
        rows.append([f"SR_{size}", round(norm, 2),
                     round(_avg(sync_sites[size]), 1),
                     round(_avg(smem_kb[size]), 1),
                     round(_avg(stall_pct[size]), 1),
                     round(_avg(smem_mb[size]), 1),
                     f"{paper['sync']}/{paper['smem_kb']}/"
                     f"{paper['stall_pct']}/{paper['smem_mb']}"])
    print()
    print(format_table(
        ["Scheme", "Thpt vs SR_1", "#Sync", "SMem KB", "Stall %",
         "SMem MB", "paper (sync/kb/stall/mb)"], rows,
        title="Figure 13 + Table 6 — merge-size sensitivity "
              "(per-CTA averages)"))

    # Shape assertions.
    norms = [geometric_mean([throughput[s][a] / throughput[1][a]
                             for a in APP_NAMES]) for s in MERGE_SIZES]
    assert norms[-1] >= norms[0], "larger merge sizes help on average"
    syncs = [_avg(sync_sites[s]) for s in MERGE_SIZES]
    assert syncs == sorted(syncs, reverse=True), \
        "sync sites fall monotonically with merge size (Table 6)"
    stalls = [_avg(stall_pct[s]) for s in MERGE_SIZES]
    assert stalls[-1] < stalls[0], "barrier-stall share falls"
    smems = [_avg(smem_kb[s]) for s in MERGE_SIZES]
    assert smems[-1] > smems[0], "merging costs shared memory"

    workload = ctx.harness.workload("Yara")
    engine = ctx.harness.bitgen_engine(workload, Scheme.SR, merge_size=32)
    benchmark(engine.match, workload.data)


def _avg(values):
    return sum(values) / max(len(values), 1)

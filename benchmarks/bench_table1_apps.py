"""Table 1: application statistics and bitstream instruction mix.

Regenerates the paper's Table 1 for the synthetic rule sets: pattern
count, character-length mean/SD, and the and/or/not/shift/while
instruction histogram of the lowered programs, next to the published
values.  Shapes to check: Yara shift-heavy with ~no whiles, Brill
while-heavy, Protomata or-heavy, ClamAV long patterns.
"""

import re
import statistics

from repro.core import BitGenEngine, Scheme
from repro.perf.paper_data import TABLE1
from repro.perf.report import format_table

from conftest import APP_NAMES


def app_row(ctx, app):
    workload = ctx.harness.workload(app)
    engine = ctx.harness.bitgen_engine(workload, Scheme.DTM)
    stats = engine.program_stats()
    # Canonical length counts \xNN byte escapes as two hex digits, the
    # convention behind ClamAV/Yara signature lengths in Table 1.
    lengths = [len(re.sub(r"\\x[0-9a-f]{2}", "XX", p))
               for p in workload.patterns]
    paper = TABLE1[app]
    scale = len(workload.patterns) / paper["regexes"]
    return [app, len(workload.patterns),
            round(statistics.mean(lengths), 1),
            round(statistics.pstdev(lengths), 1),
            stats["and"], stats["or"], stats["not"], stats["shift"],
            stats["while"],
            f"{paper['len_avg']}/{paper['len_sd']}",
            f"{int(paper['shift'] * scale)}",
            f"{int(paper['while'] * scale)}"]


def test_table1(ctx, benchmark):
    rows = [app_row(ctx, app) for app in APP_NAMES]
    print()
    print(format_table(
        ["App", "#Regex", "LenAvg", "LenSD", "and", "or", "not",
         "shift", "while", "paper len", "paper shift*", "paper while*"],
        rows,
        title="Table 1 — application statistics (paper columns scaled "
              "to the benchmark rule-set size)"))

    # Structural checks from the paper's Table 1.
    by_app = {row[0]: row for row in rows}
    assert by_app["Yara"][8] <= 2, "Yara has essentially no while loops"
    assert by_app["Brill"][8] == max(r[8] for r in rows), \
        "Brill is the most while-heavy application"
    or_share = {r[0]: r[5] / max(r[4], 1) for r in rows}
    assert or_share["Protomata"] == max(or_share.values()), \
        "Protomata has the highest or/and ratio"

    benchmark(lambda: ctx.harness.workload("TCP"))

"""Table 2: absolute throughput (MB/s) and BitGen speedups per baseline,
with the geometric-mean row.

Shapes to check against the paper: Hyperscan wins on the literal suites
(Yara 0.8x, ExactMatch 0.6x in the paper), BitGen wins everywhere over
ngAP and icgrep, and the gmean ordering icgrep > ngAP >> HS-1T > HS-MT.
"""

from repro.perf.model import geometric_mean
from repro.perf.paper_data import TABLE2, TABLE2_GMEAN_SPEEDUPS
from repro.perf.report import format_table

from conftest import APP_NAMES

BASELINES = ("HS-1T", "HS-MT", "ngAP", "icgrep")


def test_table2(ctx, benchmark):
    rows = []
    speedups = {engine: [] for engine in BASELINES}
    for app in APP_NAMES:
        bitgen = ctx.run(app, "BitGen")
        row = [app, round(bitgen.mbps, 1)]
        paper = TABLE2[app]
        for engine in BASELINES:
            run = ctx.run(app, engine)
            speedup = bitgen.mbps / max(run.mbps, 1e-9)
            speedups[engine].append(speedup)
            row.extend([round(run.mbps, 1), f"{speedup:.1f}x"])
        row.append(f"{paper.bitgen:.0f}")
        rows.append(row)
    gmean_row = ["Gmean", ""]
    for engine in BASELINES:
        gmean = geometric_mean(speedups[engine])
        gmean_row.extend(["", f"{gmean:.1f}x"])
    gmean_row.append("")
    rows.append(gmean_row)

    headers = ["App", "BitGen"]
    for engine in BASELINES:
        headers.extend([engine, "SpdUp"])
    headers.append("paper BitGen")
    print()
    print(format_table(headers, rows,
                       title="Table 2 — throughput (MB/s) and speedups"))
    print(f"paper gmean speedups: {TABLE2_GMEAN_SPEEDUPS}")

    # Shape assertions.
    gmeans = {engine: geometric_mean(speedups[engine])
              for engine in BASELINES}
    assert gmeans["ngAP"] > gmeans["HS-MT"], \
        "ngAP gap far larger than HS-MT gap (paper: 19.5x vs 1.7x)"
    assert gmeans["icgrep"] > gmeans["HS-1T"]
    assert gmeans["HS-1T"] > gmeans["HS-MT"], \
        "multithreading narrows Hyperscan's gap"
    assert gmeans["HS-MT"] > 0.5, "BitGen competitive with HS-MT"
    # Hyperscan's literal-suite wins (Table 2: Yara and ExactMatch).
    yara_index = APP_NAMES.index("Yara")
    assert speedups["HS-1T"][yara_index] < 1.5, \
        "Hyperscan is at least competitive on Yara"
    exact_index = APP_NAMES.index("ExactMatch")
    assert speedups["HS-1T"][exact_index] < 1.5, \
        "Hyperscan is at least competitive on ExactMatch"

    workload = ctx.harness.workload("ExactMatch")
    engine = ctx.harness.bitgen_engine(workload)
    benchmark(engine.match, workload.data)

"""Simulator engine-room benchmark: big-integer vs NumPy bit vectors.

Not a paper experiment — this measures the reproduction's own substrate
so the backend choice is a documented decision rather than folklore.
Python big integers do whole-stream boolean ops in one C call and win
at block/window sizes (KBs); the word-array backend exists for very
long streams and as the word-layout reference for real kernels.
"""

import pytest

from repro.bitstream.bitvector import BitVector
from repro.bitstream.npvector import NPBitVector

SIZES = (1 << 13, 1 << 20)   # a window-sized and a full-stream-sized run


def _mixed_workload(a, b):
    x = a & b
    y = x | a
    z = y.advance(1)
    w = z.andn(b)
    return w.advance(-3) ^ y


@pytest.mark.parametrize("bits", SIZES, ids=lambda b: f"{b}b")
def test_bigint_backend(benchmark, bits):
    a = BitVector((1 << bits) - 1, bits)
    b = BitVector(((1 << bits) - 1) // 3, bits)
    result = benchmark(_mixed_workload, a, b)
    assert result.length == bits


@pytest.mark.parametrize("bits", SIZES, ids=lambda b: f"{b}b")
def test_numpy_backend(benchmark, bits):
    a = NPBitVector.from_bitvector(BitVector((1 << bits) - 1, bits))
    b = NPBitVector.from_bitvector(
        BitVector(((1 << bits) - 1) // 3, bits))
    result = benchmark(_mixed_workload, a, b)
    assert result.length == bits


def test_backends_agree_on_workload(benchmark):
    bits = 4096
    ref_a = BitVector((1 << bits) - 1, bits)
    ref_b = BitVector(((1 << bits) - 1) // 5, bits)
    expected = _mixed_workload(ref_a, ref_b)
    np_a = NPBitVector.from_bitvector(ref_a)
    np_b = NPBitVector.from_bitvector(ref_b)
    actual = benchmark(_mixed_workload, np_a, np_b)
    assert actual.to_bitvector() == expected

"""Figure 11: throughput of all engines normalised to ngAP.

The paper's headline figure: BitGen vs HS-1T, HS-MT, ngAP (=1.0), and
icgrep on all ten applications.  Shape to check: BitGen above ngAP on
every application, above icgrep everywhere, above HS-1T except on the
literal-dominated suites.
"""

from repro.perf.model import geometric_mean
from repro.perf.paper_data import TABLE2
from repro.perf.report import format_bars, format_table

from conftest import APP_NAMES

ENGINES = ("BitGen", "HS-1T", "HS-MT", "ngAP", "icgrep")


def test_fig11(ctx, benchmark):
    rows = []
    normalised = {}
    for app in APP_NAMES:
        runs = {engine: ctx.run(app, engine) for engine in ENGINES}
        base = max(runs["ngAP"].mbps, 1e-9)
        normalised[app] = {e: runs[e].mbps / base for e in ENGINES}
        paper = TABLE2[app]
        paper_norm = {"BitGen": paper.bitgen / paper.ngap,
                      "HS-1T": paper.hs_1t / paper.ngap,
                      "HS-MT": paper.hs_mt / paper.ngap}
        rows.append([app] + [round(normalised[app][e], 2) for e in ENGINES]
                    + [round(paper_norm["BitGen"], 1)])
    print()
    print(format_table(["App"] + list(ENGINES) + ["paper BitGen/ngAP"],
                       rows, title="Figure 11 — throughput normalised "
                                   "to ngAP"))
    print()
    print(format_bars({app: normalised[app]["BitGen"]
                       for app in APP_NAMES},
                      title="BitGen speedup over ngAP per app"))

    # Shape assertions from the paper.
    for app in APP_NAMES:
        assert normalised[app]["BitGen"] > 1.0, \
            f"BitGen must beat ngAP on {app} (Figure 11)"
    gmean = geometric_mean([normalised[a]["BitGen"] for a in APP_NAMES])
    assert gmean > 5.0, "BitGen/ngAP geometric mean far above 1 " \
                        "(paper: 19.5x)"

    workload = ctx.harness.workload("Bro217")
    engine = ctx.harness.bitgen_engine(workload)
    benchmark(engine.match, workload.data)

"""Gateway serving latency and the interleaved-session soak.

Not a paper experiment — this measures the reproduction's own serving
layer (:mod:`repro.serve`).  Two claims are on the line:

* **Latency under load.**  Closed-loop clients issue one-shot scans
  through the in-process :class:`Gateway` at several concurrency
  levels; every request's admission-to-response latency is recorded
  and summarised as p50/p99 against the achieved offered load.  The
  in-process API is measured deliberately: it isolates the gateway's
  own queueing/admission/execution path from TCP and JSON overhead,
  which is what the CI latency guard needs to be stable.
* **Bit-identity at scale.**  A soak interleaves >= 100 streaming
  sessions round-robin across tenants and pattern sets over one
  gateway, then checks every session's merged stream matches against
  a serial one-shot scan of the same bytes — the acceptance bar for
  the multiplexer (multiplexing and policy, never a different answer).

Results land in ``BENCH_serve.json`` (the ``"open_loop"`` key belongs
to ``bench_serve_openloop.py`` and is preserved across rewrites).
``check_assertions`` enforces the soak's bit-identity and a
deliberately generous p99 budget at the lowest concurrency (catching
order-of-magnitude serving regressions, not scheduling noise).
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import Dict, List

import repro
from repro.parallel.config import ScanConfig
from repro.serve import Gateway, ServeConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

PATTERN_SETS = {
    "web": ["GET /[a-z]+", "cat|dog", "[0-9][0-9]"],
    "ids": ["a(bc)*d", "virus[0-9]+", "colou?r", "xy+z"],
}
BASE = (b"abcbcd colour cat 42 xyyz virus7 GET /index "
        b"foo bar qux color abcd and 99 dogs " * 24)

#: closed-loop client counts; >= 3 levels per the serving spec
CONCURRENCY_LEVELS = (1, 4, 16)
REQUESTS_PER_CLIENT = 24
SCAN_BYTES = 1536

#: CI latency-guard budget: p99 of a ~1.5KB scan at concurrency 1.
#: Generous on purpose — the guard exists to catch the gateway
#: suddenly queueing, recompiling, or serializing where it should
#: not, not to benchmark the machine.
P99_BUDGET_S = 0.75

SOAK_SESSIONS = 120
SOAK_CHUNK = 96
SOAK_CHUNKS = 6


def percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


async def measure_level(gateway: Gateway, concurrency: int) -> Dict:
    """Closed-loop: ``concurrency`` clients, back-to-back scans."""
    patterns = PATTERN_SETS["web"]
    data = BASE[:SCAN_BYTES]
    latencies: List[float] = []

    async def client(tenant: str) -> None:
        for _ in range(REQUESTS_PER_CLIENT):
            begin = time.perf_counter()
            await gateway.scan(tenant, patterns, data)
            latencies.append(time.perf_counter() - begin)

    # one tenant per client: levels measure concurrent lanes, not a
    # single lane's serialization
    begin = time.perf_counter()
    await asyncio.gather(*(client(f"load-{index}")
                           for index in range(concurrency)))
    elapsed = time.perf_counter() - begin
    total = concurrency * REQUESTS_PER_CLIENT
    return {
        "concurrency": concurrency,
        "requests": total,
        "seconds": elapsed,
        "offered_load_rps": total / elapsed,
        "p50_s": percentile(latencies, 0.50),
        "p99_s": percentile(latencies, 0.99),
        "mean_s": sum(latencies) / len(latencies),
        "max_s": max(latencies),
    }


async def soak(gateway: Gateway) -> Dict:
    """>= 100 interleaved sessions, checked against serial scans."""
    set_names = sorted(PATTERN_SETS)
    plans = []
    for index in range(SOAK_SESSIONS):
        name = set_names[index % len(set_names)]
        offset = (index * 37) % (len(BASE) - SOAK_CHUNK * SOAK_CHUNKS)
        data = BASE[offset:offset + SOAK_CHUNK * SOAK_CHUNKS]
        plans.append({"tenant": f"soak-{index % 5}",
                      "patterns": PATTERN_SETS[name],
                      "data": data})

    for plan in plans:
        opened = await gateway.open_session(plan["tenant"],
                                            plan["patterns"])
        plan["session"] = opened["session"]
        plan["streamed"] = {}

    # round-robin: every session's chunk k goes out before any
    # session's chunk k+1 — maximal interleaving on shared engines
    for chunk_index in range(SOAK_CHUNKS):
        begin = chunk_index * SOAK_CHUNK
        for plan in plans:
            report = await gateway.feed(
                plan["tenant"], plan["session"],
                plan["data"][begin:begin + SOAK_CHUNK])
            for pattern, ends in report.matches.items():
                plan["streamed"].setdefault(pattern, []).extend(ends)

    mismatches = 0
    total_matches = 0
    for plan in plans:
        await gateway.close_session(plan["tenant"], plan["session"])
        reference = repro.scan(plan["patterns"], plan["data"])
        expected = {p: list(ends)
                    for p, ends in reference.matches.items() if ends}
        streamed = {p: ends for p, ends in plan["streamed"].items()
                    if ends}
        total_matches += reference.match_count()
        if streamed != expected:
            mismatches += 1
    return {
        "sessions": len(plans),
        "tenants": 5,
        "pattern_sets": len(PATTERN_SETS),
        "chunks_per_session": SOAK_CHUNKS,
        "total_matches": total_matches,
        "mismatched_sessions": mismatches,
        "bit_identical": mismatches == 0,
    }


async def run_async() -> Dict:
    # capacity >= max concurrency level: every load tenant's engine
    # stays resident, so the levels measure queueing and execution,
    # not LRU-eviction recompile thrash
    gateway = Gateway(ServeConfig(
        max_engines=max(CONCURRENCY_LEVELS) + 8, queue_depth=256,
        scan=ScanConfig(loop_fallback=True)))
    # warm the engine once so levels measure serving, not compilation
    await gateway.compile("load-0", PATTERN_SETS["web"])

    rows = []
    for concurrency in CONCURRENCY_LEVELS:
        rows.append(await measure_level(gateway, concurrency))
    soak_result = await soak(gateway)
    host = gateway.host.stats()
    await gateway.close()
    return {
        "benchmark": "serving gateway: closed-loop scan latency and "
                     "interleaved-session soak (repro.serve)",
        "scan_bytes": SCAN_BYTES,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "p99_budget_s": P99_BUDGET_S,
        "levels": rows,
        "soak": soak_result,
        "host": {"capacity": host["capacity"],
                 "resident": host["resident"],
                 "acquires": host["acquires"]},
    }


def run_benchmark() -> Dict:
    payload = asyncio.run(run_async())
    if OUTPUT.exists():
        try:
            previous = json.loads(OUTPUT.read_text())
        except (ValueError, OSError):
            previous = {}
        if "open_loop" in previous:
            payload["open_loop"] = previous["open_loop"]
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    for row in payload["levels"]:
        print(f"  concurrency={row['concurrency']:3d}: "
              f"{row['offered_load_rps']:8.1f} req/s  "
              f"p50={row['p50_s'] * 1e3:6.2f}ms  "
              f"p99={row['p99_s'] * 1e3:6.2f}ms")
    soak_result = payload["soak"]
    print(f"  soak: {soak_result['sessions']} sessions, "
          f"{soak_result['total_matches']} matches, "
          f"bit_identical={soak_result['bit_identical']}")
    return payload


def check_assertions(payload: Dict) -> None:
    assert len(payload["levels"]) >= 3
    assert payload["soak"]["sessions"] >= 100
    assert payload["soak"]["bit_identical"], \
        (f"{payload['soak']['mismatched_sessions']} sessions diverged "
         f"from serial one-shot scans")
    lowest = payload["levels"][0]
    assert lowest["p99_s"] <= P99_BUDGET_S, \
        (f"p99 at concurrency {lowest['concurrency']} is "
         f"{lowest['p99_s']:.3f}s, over the {P99_BUDGET_S}s budget")


def test_serve_latency_and_soak():
    payload = run_benchmark()
    check_assertions(payload)


if __name__ == "__main__":
    check_assertions(run_benchmark())
    print(f"wrote {OUTPUT}")

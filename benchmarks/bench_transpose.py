"""Preprocessing transpose kernel (Section 7's overhead claim).

The paper: "transposing 1 MB on an RTX 3090 typically takes about
0.026 ms (37,449 MB/s), regardless of the regex patterns or input
data, causing negligible performance overhead."  Checks: (a) modelled
transpose throughput is in the tens of GB/s; (b) it is independent of
input content; (c) it is a small fraction of the slowest application's
kernel time.
"""

import random

from repro.gpu.transpose_kernel import (model_transpose_time,
                                        run_transpose_kernel)
from repro.perf.report import format_table

PAPER_MS_PER_MB = 0.026


def test_transpose_overhead(ctx, benchmark):
    rng = random.Random(0)
    size = 1 << 20
    inputs = {
        "zeros": bytes(size),
        "text": (b"the quick brown fox " * (size // 20 + 1))[:size],
        "random": bytes(rng.randrange(256) for _ in range(size // 64))
        * 64,
    }
    rows = []
    times_ms = []
    for name, data in inputs.items():
        result = run_transpose_kernel(data[:size])
        seconds = model_transpose_time(result.metrics, ctx.harness.gpu)
        times_ms.append(seconds * 1e3)
        rows.append([name, round(seconds * 1e3, 4),
                     round(size / seconds / 1e6, 0)])
    print()
    print(format_table(["input (1 MB)", "ms", "MB/s"], rows,
                       title=f"Transpose kernel (paper: "
                             f"{PAPER_MS_PER_MB} ms, ~37,449 MB/s)"))

    # (a) tens of GB/s
    assert all(size / (t / 1e3) / 1e9 > 10 for t in times_ms)
    # (b) content-independent
    assert max(times_ms) == min(times_ms)
    # (c) negligible against the regex kernel: compare with the slowest
    # app at this scale
    slowest = min(ctx.run(app, "BitGen").throughput.seconds
                  for app in ("Brill", "Protomata"))
    per_input_byte = times_ms[0] / 1e3 / size
    kernel_per_byte = slowest / 1_000_000
    assert per_input_byte < 0.25 * kernel_per_byte, \
        "transpose is a small fraction of kernel time (paper: negligible)"

    benchmark(run_transpose_kernel, inputs["text"][:65536])

"""Shared benchmark fixtures.

One session-scoped :class:`BenchContext` owns the harness and memoises
every (app, engine, configuration) run, so the per-table benchmarks can
share measurements (Table 2 and Figure 11 reuse the same runs; Figure 15
re-prices cached kernel metrics on other GPUs without re-simulating).

Scaling: ``scale=0.02`` of each rule set over 64 KiB inputs, with
1024-bit blocks so block counts match the paper's ~62 iterations; the
analytic model extrapolates counted work back to the paper's full
setting (see ``repro.perf``).  Set ``REPRO_BENCH_SCALE`` to change.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.core.schemes import Scheme
from repro.perf.harness import EngineRun, Harness

APP_NAMES = ("Brill", "ClamAV", "Dotstar", "Protomata", "Snort", "Yara",
             "Bro217", "ExactMatch", "Ranges1", "TCP")


class BenchContext:
    """Memoised experiment runner shared by all benchmark modules."""

    def __init__(self, scale: float):
        self.harness = Harness(scale=scale)
        self._runs: Dict[Tuple, EngineRun] = {}

    def run(self, app: str, engine: str) -> EngineRun:
        key = (app, engine)
        if key not in self._runs:
            self._runs[key] = self.harness.run(app, engine)
        return self._runs[key]

    def run_bitgen(self, app: str, scheme: Scheme = Scheme.ZBS,
                   merge_size: int = 8, interval_size: int = 8,
                   gpu=None) -> EngineRun:
        key = (app, "BitGen", scheme, merge_size, interval_size,
               gpu.name if gpu else None)
        if key not in self._runs:
            self._runs[key] = self.harness.run_bitgen(
                app, scheme=scheme, merge_size=merge_size,
                interval_size=interval_size, gpu=gpu)
        return self._runs[key]


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
    return BenchContext(scale=scale)

"""IR pass-pipeline benchmark: executed ops and wall time, opt 0/1/2.

Not a paper experiment — this audits the reproduction's own optimizer.
Each workload's rule set is compiled at every optimization level and
run over the same input; the levels must be bit-identical (asserted on
every cell), level 2 must never execute *more* word ops than level 0,
and across the workload suite the full pipeline must remove at least
10% of executed ops.  Wall time is measured on the compiled backend,
where smaller generated kernels translate directly into fewer NumPy
array passes.

Results land in ``BENCH_ir_opt.json`` with per-pass rewrite/removal
deltas (from ``BitGenEngine.optimization_stats``) so a regression in
any single pass is visible, not just the total.

Runs standalone (``python benchmarks/bench_ir_opt.py [--quick]``, the
CI smoke mode) or under pytest like the other benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.engine import BitGenEngine
from repro.parallel.config import ScanConfig
from repro.workloads.apps import app_by_name

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_ir_opt.json"

FULL_APPS = ("Snort", "ClamAV", "Bro217", "Dotstar", "Ranges1", "Yara")
QUICK_APPS = ("Snort", "Bro217")

LEVELS = (0, 1, 2)

#: acceptance floor: the pipeline must remove this fraction of the
#: suite's executed word ops (ISSUE 4 asks for >= 10%)
MIN_TOTAL_REDUCTION = 0.10


def compile_at(nodes, level: int, backend: str) -> BitGenEngine:
    return BitGenEngine._compile_config(
        nodes, ScanConfig(backend=backend, cta_count=4,
                          loop_fallback=True, opt_level=level))


def best_of(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        begin = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - begin)
    return best


def measure_app(app_name: str, scale: float, input_bytes: int,
                repeat: int) -> dict:
    workload = app_by_name(app_name).build(
        scale=scale, seed=0, input_bytes=int(input_bytes / scale))
    row = {"app": app_name, "patterns": len(workload.patterns),
           "input_bytes": len(workload.data), "levels": {}}
    reference = None
    for level in LEVELS:
        engine = compile_at(workload.nodes, level, "simulate")
        result = engine.match(workload.data)
        if reference is None:
            reference = result.ends
        else:
            assert result.ends == reference, \
                f"{app_name}: opt_level={level} changed matches"
        stats = engine.optimization_stats()
        compiled = compile_at(workload.nodes, level, "compiled")
        compiled.match(workload.data)        # warm: codegen + cache
        seconds = best_of(lambda: compiled.match(workload.data), repeat)
        row["levels"][str(level)] = {
            "static_instrs": engine.program_stats()["instrs"],
            "executed_word_ops": result.metrics.thread_word_ops,
            "instrs_removed": stats["ops_removed"],
            "passes": stats["passes"],
            "compiled_seconds": seconds,
        }
    at0 = row["levels"]["0"]
    at2 = row["levels"]["2"]
    row["executed_op_reduction"] = (
        1.0 - at2["executed_word_ops"] / max(1, at0["executed_word_ops"]))
    row["compiled_speedup"] = (at0["compiled_seconds"]
                               / max(at2["compiled_seconds"], 1e-12))
    return row


def run(quick: bool) -> dict:
    apps = QUICK_APPS if quick else FULL_APPS
    scale = 0.02
    input_bytes = 16384 if quick else 65536
    repeat = 3 if quick else 5
    rows = [measure_app(app, scale, input_bytes, repeat)
            for app in apps]

    executed = {level: sum(r["levels"][str(level)]["executed_word_ops"]
                           for r in rows) for level in LEVELS}
    reduction = 1.0 - executed[2] / max(1, executed[0])
    payload = {
        "benchmark": "IR pass pipeline (CSE + algebraic + shift "
                     "coalescing) vs unoptimized lowering",
        "mode": "quick" if quick else "full",
        "apps": list(apps),
        "rows": rows,
        "total_executed_word_ops": {str(k): v
                                    for k, v in executed.items()},
        "total_reduction_opt2_vs_opt0": reduction,
    }

    print(f"IR optimization benchmark ({payload['mode']})")
    for row in rows:
        at0, at2 = row["levels"]["0"], row["levels"]["2"]
        print(f"  {row['app']:<10} ops {at0['executed_word_ops']:>9} -> "
              f"{at2['executed_word_ops']:>9} "
              f"(-{row['executed_op_reduction']:.1%})  "
              f"compiled {at0['compiled_seconds']*1e3:7.2f}ms -> "
              f"{at2['compiled_seconds']*1e3:7.2f}ms "
              f"({row['compiled_speedup']:.2f}x)")
    print(f"  total: {executed[0]} -> {executed[2]} executed word ops "
          f"(-{reduction:.1%})")

    # Hard floors: the pipeline must never pessimise a workload, and
    # must clear the 10% suite-wide reduction the issue asks for.
    for row in rows:
        levels = row["levels"]
        assert levels["2"]["executed_word_ops"] \
            <= levels["0"]["executed_word_ops"], \
            f"{row['app']}: opt_level=2 executed MORE ops than opt_level=0"
        assert levels["1"]["executed_word_ops"] \
            <= levels["0"]["executed_word_ops"]
    assert reduction >= MIN_TOTAL_REDUCTION, \
        f"pipeline removed only {reduction:.1%} of executed ops " \
        f"(floor {MIN_TOTAL_REDUCTION:.0%})"
    # Fewer array passes must show up as wall time somewhere; exact
    # ratios are machine noise, so only the existence of a win is
    # asserted (the JSON records every number).
    assert any(row["compiled_speedup"] > 1.0 for row in rows), \
        "no workload showed a compiled wall-time win at opt_level=2"

    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_ir_opt_quick():
    run(quick=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small inputs / fewer apps (CI smoke mode)")
    options = parser.parse_args(argv)
    run(quick=options.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Chaos soak: randomized fault injection over the scan pipeline.

The CI ``chaos-soak`` job's entry point.  Runs the parallel scan
surfaces (stream shards, group shards, streaming sessions) repeatedly
under a **seeded** :class:`ChaosPlan` for every fault kind crossed
with both executors, and fails loudly if any of the resilience
contracts break:

* results must stay **bit-identical to serial** through every
  recovery path (degrade, retry, deadline, breaker);
* no shared-memory segment may leak on any exit path;
* ``on_fault="fail"`` must raise :class:`ScanAbortedError`;
* ``on_fault="retry"`` must recover a transient fault *without*
  touching the inline serial fallback;
* a deadline scan must return within the deadline plus bounded
  recovery slack.

The matrix skips ``thread x exit`` on purpose: an ``exit`` injection
in a thread worker is ``os._exit`` of the harness itself.

Usage::

    python scripts/chaos_soak.py [--rounds N] [--seed S]

Artifacts: ``results/chaos_soak_metrics.json`` (per-cell fault counts
and the final obs counter snapshot) and
``results/chaos_soak_metrics.prom`` (the full metrics registry,
Prometheus text exposition).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.core.engine import BitGenEngine  # noqa: E402
from repro.core.streaming import StreamingMatcher  # noqa: E402
from repro.gpu.machine import CTAGeometry  # noqa: E402
from repro.parallel import shm  # noqa: E402
from repro.parallel.config import ScanConfig  # noqa: E402
from repro.parallel import pool as pool_mod  # noqa: E402
from repro.parallel.pool import shutdown  # noqa: E402
from repro.parallel.scan import ParallelScanner, parallel_sessions  # noqa: E402
from repro.resilience import chaos  # noqa: E402
from repro.resilience.chaos import ChaosPlan, ChaosRule  # noqa: E402
from repro.resilience.policy import ScanAbortedError  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
TINY = CTAGeometry(threads=4, word_bits=8)

PATTERNS = ["a(bc)*d", "cat|dog", "[0-9][0-9]", "virus[0-9]"]
DATA = b"abcbcd cat 42 virus7 dog abcd " * 24
STREAMS = [DATA[:60], DATA[:150], DATA[:60], DATA[:240], DATA[:150]]
SESSIONS = [
    [b"xx virus1 y", b"y virus2 abcb", b"cd dog virus3"],
    [b"hot dog abc", b"bcd cat 42 ", b"abcd" * 6],
    [b"quiet chunk", b"still quiet", b"virus9 at last"],
]

#: the soak matrix: every fault kind on both executors, except the
#: suicidal thread+exit cell
MATRIX = [(executor, kind)
          for executor in ("thread", "process")
          for kind in ("exception", "timeout", "exit", "pool")
          if not (executor == "thread" and kind == "exit")]

INJECT_PROBABILITY = 0.05

#: ``pool`` draws once per dispatch and ``exit`` kills the pool's
#: draw sources with it — both see an order of magnitude fewer draws
#: per cell than worker exception/timeout sites, so they need a
#: higher per-draw probability to fire within a soak cell.
KIND_PROBABILITY = {"pool": 0.25, "exit": 0.15}


def sig(result):
    return {k: sorted(v) for k, v in result.ends.items()}


def build_engine():
    return BitGenEngine.compile(
        PATTERNS, config=ScanConfig(geometry=TINY, loop_fallback=True,
                                    backend="compiled"))


def cell_config(executor: str, kind: str) -> ScanConfig:
    return ScanConfig(
        geometry=TINY, loop_fallback=True, backend="compiled",
        workers=2, executor=executor, min_parallel_bytes=0,
        worker_timeout=0.25 if kind == "timeout" else None)


def chaos_spec(kind: str, seed: int) -> str:
    site = "pool.acquire" if kind == "pool" else "worker.*"
    probability = KIND_PROBABILITY.get(kind, INJECT_PROBABILITY)
    return ChaosPlan(seed=seed, rules=(
        ChaosRule(site=site, kind=kind,
                  probability=probability),)).to_spec()


def assert_no_leaks(context: str):
    leaked = shm.active_segments()
    if leaked:
        shm.dispose_all()
        raise AssertionError(f"{context}: leaked shm segments {leaked}")


def soak_cell(engine, baselines, executor: str, kind: str, seed: int,
              rounds: int) -> dict:
    """One matrix cell: `rounds` passes of every scan surface under
    env-armed chaos (env so process workers inherit it)."""
    serial_streams, serial_match, serial_sessions = baselines
    os.environ[chaos.CHAOS_ENV] = chaos_spec(kind, seed)
    os.environ[chaos.SLEEP_ENV] = "0.5"
    chaos.reset()
    faults = {"stream": 0, "group": 0, "session": 0}
    mismatches = 0
    config = cell_config(executor, kind)
    try:
        for _ in range(rounds):
            scanner = ParallelScanner(engine, config)
            results = scanner.match_many(STREAMS)
            if [sig(r) for r in results] != serial_streams:
                mismatches += 1
            faults["stream"] += len(scanner.faults)

            scanner = ParallelScanner(engine, config)
            merged = scanner.match(DATA)
            if sig(merged) != serial_match:
                mismatches += 1
            faults["group"] += len(scanner.faults)

            reports = parallel_sessions(engine, SESSIONS, config)
            if [dict(r.items()) for r in reports] != serial_sessions:
                mismatches += 1
            faults["session"] += len(engine.last_scan_faults)

            assert_no_leaks(f"{executor}/{kind}")
    finally:
        os.environ.pop(chaos.CHAOS_ENV, None)
        os.environ.pop(chaos.SLEEP_ENV, None)
        chaos.reset()
        # Cells are independent: a breaker opened by this cell's pool
        # faults must not push the next cell (or the directed policy
        # checks) onto the inline path.
        pool_mod.breaker().reset()
    return {"executor": executor, "kind": kind, "seed": seed,
            "rounds": rounds, "faults": faults,
            "fault_total": sum(faults.values()),
            "mismatches": mismatches}


def check_fail_policy(engine) -> None:
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception"),)))
    try:
        scanner = ParallelScanner(engine, cell_config("thread", "x")
                                  .replace(on_fault="fail"))
        try:
            scanner.match_many(STREAMS)
        except ScanAbortedError as exc:
            assert exc.fault.fallback == "abort", exc.fault
        else:
            raise AssertionError(
                "on_fault='fail' swallowed an injected fault")
    finally:
        chaos.reset()
        pool_mod.breaker().reset()


def check_retry_policy(engine, serial_streams) -> None:
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="exception", max_count=1),)))
    try:
        scanner = ParallelScanner(
            engine, cell_config("thread", "x").replace(
                on_fault="retry", max_retries=2, retry_backoff=0.01))
        results = scanner.match_many(STREAMS)
        assert [sig(r) for r in results] == serial_streams
        assert scanner.faults, "transient fault never fired"
        for fault in scanner.faults:
            assert fault.fallback == "retry", \
                f"retry policy fell back serially: {fault.summary()}"
    finally:
        chaos.reset()
        pool_mod.breaker().reset()


def check_deadline(engine, serial_streams) -> None:
    os.environ[chaos.SLEEP_ENV] = "2.0"
    chaos.install(ChaosPlan(rules=(
        ChaosRule(site="worker.*", kind="timeout"),)))
    try:
        scanner = ParallelScanner(
            engine, cell_config("thread", "x").replace(deadline_s=0.4))
        started = time.monotonic()
        results = scanner.match_many(STREAMS)
        elapsed = time.monotonic() - started
        assert [sig(r) for r in results] == serial_streams
        assert {f.kind for f in scanner.faults} == {"deadline"}, \
            scanner.faults
        # deadline + inline recovery of the stragglers, nowhere near
        # the 2 s the workers sleep
        assert elapsed < 1.8, f"deadline scan took {elapsed:.2f}s"
    finally:
        os.environ.pop(chaos.SLEEP_ENV, None)
        chaos.reset()
        pool_mod.breaker().reset()


def counter_snapshot() -> dict:
    names = (
        "repro_chaos_injections_total",
        "repro_shard_faults_total",
        "repro_retry_attempts_total",
        "repro_deadline_exceeded_total",
        "repro_breaker_inline_total",
        "repro_parallel_pool_discards_total",
    )
    registry = obs.registry()
    snapshot = {}
    for name in names:
        try:
            snapshot[name] = registry.counter(name, "").value()
        except Exception:
            snapshot[name] = None
    return snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=8,
                        help="scan rounds per matrix cell")
    parser.add_argument("--seed", type=int, default=20260807,
                        help="base chaos seed (cell i uses seed+i)")
    options = parser.parse_args(argv)

    engine = build_engine()
    serial_streams = [sig(r) for r in engine.match_many(STREAMS)]
    serial_match = sig(engine.match(DATA))
    serial_session_reports = []
    for chunks in SESSIONS:
        matcher = StreamingMatcher(engine)
        serial_session_reports.append(
            dict(matcher.feed_all(chunks).items()))
    baselines = (serial_streams, serial_match, serial_session_reports)

    cells = []
    for index, (executor, kind) in enumerate(MATRIX):
        cell = soak_cell(engine, baselines, executor, kind,
                         options.seed + index, options.rounds)
        cells.append(cell)
        print(f"  {executor:<8} {kind:<10} rounds={cell['rounds']} "
              f"faults={cell['fault_total']:<4} "
              f"mismatches={cell['mismatches']}")

    print("  directed policy checks: fail / retry / deadline")
    check_fail_policy(engine)
    check_retry_policy(engine, serial_streams)
    check_deadline(engine, serial_streams)
    shutdown()

    total_faults = sum(cell["fault_total"] for cell in cells)
    total_mismatches = sum(cell["mismatches"] for cell in cells)
    payload = {
        "benchmark": "chaos soak: seeded fault injection over the "
                     "parallel scan pipeline",
        "seed": options.seed,
        "rounds_per_cell": options.rounds,
        "inject_probability": INJECT_PROBABILITY,
        "cells": cells,
        "total_faults_recovered": total_faults,
        "total_mismatches": total_mismatches,
        "counters": counter_snapshot(),
    }
    out_dir = ROOT / "results"
    out_dir.mkdir(exist_ok=True)
    (out_dir / "chaos_soak_metrics.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    try:
        obs.export.write_prometheus(
            obs.registry(), str(out_dir / "chaos_soak_metrics.prom"))
    except Exception as exc:  # metrics dump must not mask a clean soak
        print(f"  (prometheus dump skipped: {exc!r})")

    print(f"chaos soak: {len(cells)} cells, "
          f"{total_faults} faults recovered, "
          f"{total_mismatches} serial/parallel mismatches")
    if total_mismatches:
        print("FAIL: parallel results diverged from serial under chaos")
        return 1
    if total_faults == 0:
        print("FAIL: chaos never bit — injection sites or the plan "
              "are broken")
        return 1
    silent_kinds = sorted(
        {kind for _, kind in MATRIX}
        - {cell["kind"] for cell in cells if cell["fault_total"]})
    if silent_kinds:
        print(f"FAIL: fault kind(s) never fired: {silent_kinds} — "
              "raise KIND_PROBABILITY or rounds")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

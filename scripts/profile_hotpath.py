#!/usr/bin/env python3
"""Profile one Table 2 harness cell under cProfile.

Shows where one (app, scheme, backend) cell actually spends its time —
the evidence behind the compiled backend's design (the simulate path
burns its cycles in per-window instruction dispatch; the compiled path
in NumPy kernels).

Usage::

    PYTHONPATH=src python scripts/profile_hotpath.py \
        [--app Snort] [--backend simulate|compiled] \
        [--scheme ZBS] [--top 20]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="Snort",
                        help="workload name (default: Snort)")
    parser.add_argument("--backend", default="simulate",
                        choices=("simulate", "compiled"))
    parser.add_argument("--scheme", default="ZBS",
                        help="execution scheme (Base/DTM-/DTM/SR/ZBS)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the cumulative-time report")
    parser.add_argument("--scale", type=float, default=0.02)
    args = parser.parse_args(argv)

    from repro.core.schemes import Scheme
    from repro.perf.harness import Harness
    from repro.parallel.config import ScanConfig

    scheme = next((s for s in Scheme if s.value.lower()
                   == args.scheme.lower()), None)
    if scheme is None:
        parser.error(f"unknown scheme {args.scheme!r}")

    harness = Harness(scale=args.scale,
                      config=ScanConfig(backend=args.backend))
    workload = harness.workload(args.app)
    engine = harness.bitgen_engine(workload, scheme=scheme)
    print(f"profiling {args.app} / {scheme.value} / {args.backend} "
          f"({len(workload.data)} bytes, {len(engine.groups)} CTAs)",
          file=sys.stderr)

    profiler = cProfile.Profile()
    profiler.enable()
    result = engine.match(workload.data)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(args.top)
    print(f"matches: {result.match_count()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

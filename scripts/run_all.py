#!/usr/bin/env python3
"""Run the full experiment suite and write CSV results + ASCII figures,
mirroring the paper artifact's ``5_run_all.sh`` / ``6_plot_all.sh``
workflow (results land in ``results/csv`` and ``results/``).

Usage::

    python scripts/run_all.py [--scale 0.02] [--out results]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.core.schemes import SCHEME_LADDER, Scheme
from repro.gpu.config import ALL_GPUS, RTX_3090
from repro.perf.harness import ENGINE_NAMES, Harness
from repro.perf.model import geometric_mean
from repro.perf.paper_data import APPS
from repro.perf.report import format_bars, format_table, to_csv


def write(path: pathlib.Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    print(f"  wrote {path}")


def run_throughput(harness: Harness, out: pathlib.Path) -> None:
    print("== Figure 11 / Table 2: throughput ==")
    headers = ["app"] + list(ENGINE_NAMES)
    rows = []
    for app in APPS:
        row = [app]
        for engine in ENGINE_NAMES:
            row.append(round(harness.run(app, engine).mbps, 2))
            print(f"  {app} / {engine}: {row[-1]} MB/s")
        rows.append(row)
    write(out / "csv" / "table2_throughput.csv", to_csv(headers, rows))
    bitgen = {row[0]: row[1] for row in rows}
    ngap = {row[0]: row[1 + ENGINE_NAMES.index("ngAP")] for row in rows}
    figure = format_bars({app: bitgen[app] / max(ngap[app], 1e-9)
                          for app in APPS},
                         title="Figure 11: BitGen speedup over ngAP")
    write(out / "figure11.txt", figure)


def run_breakdown(harness: Harness, out: pathlib.Path) -> None:
    print("== Figure 12: optimization breakdown ==")
    headers = ["app"] + [s.value for s in SCHEME_LADDER]
    rows = []
    for app in APPS:
        base = harness.run_bitgen(app, Scheme.BASE).mbps
        row = [app] + [round(harness.run_bitgen(app, s).mbps
                             / max(base, 1e-9), 2)
                       for s in SCHEME_LADDER]
        rows.append(row)
        print(f"  {app}: {row[1:]}")
    gmeans = ["gmean"] + [round(geometric_mean(
        [row[1 + i] for row in rows]), 2)
        for i in range(len(SCHEME_LADDER))]
    rows.append(gmeans)
    write(out / "csv" / "figure12_breakdown.csv", to_csv(headers, rows))


def run_portability(harness: Harness, out: pathlib.Path) -> None:
    print("== Figure 15: portability ==")
    headers = ["engine", "gpu", "normalised"]
    rows = []
    for gpu in ALL_GPUS:
        values = [harness.run_bitgen(app, gpu=gpu).mbps for app in APPS]
        base = [harness.run_bitgen(app, gpu=RTX_3090).mbps
                for app in APPS]
        norm = geometric_mean([v / b for v, b in zip(values, base)])
        rows.append(["BitGen", gpu.name, round(norm, 2)])
        print(f"  BitGen on {gpu.name}: {norm:.2f}x")
    write(out / "csv" / "figure15_portability.csv",
          to_csv(headers, rows))


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    out = pathlib.Path(args.out)
    harness = Harness(scale=args.scale)
    started = time.time()
    run_throughput(harness, out)
    run_breakdown(harness, out)
    run_portability(harness, out)
    print(f"done in {time.time() - started:.0f}s; results in {out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
